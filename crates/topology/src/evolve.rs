//! Topology evolution: historical snapshots and forward growth models.
//!
//! The broker set is a long-lived institution, but the Internet grows by
//! tens of ASes a day. This module covers both directions of time:
//!
//! - **Backward**: [`historical_snapshot`] derives an earlier Internet
//!   from a generated one by removing the most recently attached stubs —
//!   under preferential attachment the stub tail is exactly where growth
//!   happens — so a selection made at epoch 0 can be re-evaluated
//!   against the topology at epoch E.
//! - **Forward**: [`evolve`] runs a seeded multi-epoch growth model (IXP
//!   births, membership growth, remote-peering attachments, AS births
//!   and deaths, relationship flips) and emits a serializable
//!   [`DeltaStream`] of epochal [`TopoDelta`]s. The stream lowers to
//!   [`netgraph::GraphDelta`]s for the traversal/selection machinery and
//!   [`materialize`]s back into a full [`Internet`] with consistent
//!   relationship metadata. Epochs share the integer timeline of
//!   [`netgraph::fault::FaultSchedule`], so churn and faults compose
//!   into one schedule: e.g. an IXP born at epoch 3 can go dark at
//!   epoch 5 and recover at epoch 8.

use crate::taxonomy::{NodeKind, Relationship};
use crate::{Internet, InternetConfig};
use netgraph::{GraphDelta, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Derive the historical snapshot of `net` containing all providers and
/// IXPs but only the first `stub_fraction` of its stub ASes.
///
/// Returns the smaller topology plus the mapping from its vertex ids to
/// `net`'s ids (needed to compare selections across snapshots).
///
/// # Panics
///
/// Panics unless `0 < stub_fraction <= 1`, or if `net`'s vertex layout
/// does not match `cfg` (the snapshot relies on the generator's
/// providers-stubs-IXPs id ordering).
pub fn historical_snapshot(
    net: &Internet,
    cfg: &InternetConfig,
    stub_fraction: f64,
) -> (Internet, Vec<NodeId>) {
    assert!(
        stub_fraction > 0.0 && stub_fraction <= 1.0,
        "stub_fraction must be in (0, 1], got {stub_fraction}"
    );
    let g = net.graph();
    assert_eq!(
        g.node_count(),
        cfg.node_count(),
        "topology does not match the config"
    );
    let n_providers = cfg.n_tier1 + cfg.n_transit;
    let keep_stubs = ((cfg.n_stub as f64 * stub_fraction).round() as usize).max(1);

    let mut keep = NodeSet::new(g.node_count());
    for v in g.nodes() {
        let idx = v.index();
        let is_provider = idx < n_providers;
        let is_kept_stub = idx >= n_providers && idx < n_providers + keep_stubs;
        let is_ixp = net.kind(v) == NodeKind::Ixp;
        if is_provider || is_kept_stub || is_ixp {
            keep.insert(v);
        }
    }

    let (sub, map) = g.induced_subgraph(&keep);
    // Remap metadata and relationships.
    let mut new_of_old = vec![u32::MAX; g.node_count()];
    for (new, &old) in map.iter().enumerate() {
        new_of_old[old.index()] = new as u32;
    }
    let kinds = map.iter().map(|&v| net.kind(v)).collect();
    let names = map.iter().map(|&v| net.name(v).to_string()).collect();
    let rels = net
        .relationships()
        .iter()
        .filter(|&&(a, b, _)| keep.contains(a) && keep.contains(b))
        .map(|&(a, b, rel)| {
            (
                NodeId(new_of_old[a.index()]),
                NodeId(new_of_old[b.index()]),
                rel,
            )
        })
        .collect();
    (Internet::from_parts(sub, kinds, names, rels), map)
}

/// Jaccard similarity of two broker sets expressed in a *common* id
/// space (use the snapshot map to translate).
pub fn selection_jaccard(a: &NodeSet, b: &NodeSet) -> f64 {
    let union = a.union_len(b);
    if union == 0 {
        return 1.0;
    }
    let inter = a.len() + b.len() - union;
    inter as f64 / union as f64
}

/// One semantic edit to the evolving AS/IXP topology.
///
/// Ops are ordered within their [`TopoDelta`]: a `Membership` may refer
/// to an IXP born by an earlier op of the same epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// A new exchange point appears (vertex appended after the current
    /// id range).
    IxpBirth {
        /// Display name of the new IXP.
        name: String,
    },
    /// A new AS appears and buys transit from `providers`.
    AsBirth {
        /// Stub category of the newcomer.
        kind: NodeKind,
        /// Display name of the new AS.
        name: String,
        /// Providers the newcomer multihomes to (it is their customer).
        providers: Vec<NodeId>,
    },
    /// An AS ceases operation: its id survives as a tombstone, every
    /// incident link is withdrawn.
    AsDeath {
        /// The deceased AS.
        node: NodeId,
    },
    /// An AS joins an IXP over local fabric.
    Membership {
        /// The joining AS.
        member: NodeId,
        /// The exchange joined.
        ixp: NodeId,
    },
    /// An AS attaches to a distant IXP via a remote-peering reseller —
    /// structurally a membership edge, tracked separately because remote
    /// peering is a distinct growth driver.
    RemotePeering {
        /// The remotely attaching AS.
        member: NodeId,
        /// The exchange reached remotely.
        ixp: NodeId,
    },
    /// A new AS–AS link with relationship `rel` as seen from `a`.
    Link {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Business relationship from `a`'s perspective.
        rel: Relationship,
    },
    /// An existing link is withdrawn.
    Unlink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The business relationship on an existing link changes (e.g. a
    /// paid customer link settles into peering). No graph change.
    RelFlip {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The new relationship from `a`'s perspective.
        rel: Relationship,
    },
}

impl DeltaOp {
    /// Whether the op changes graph structure (everything but a
    /// relationship flip).
    pub fn is_structural(&self) -> bool {
        !matches!(self, DeltaOp::RelFlip { .. })
    }
}

/// One epoch's worth of semantic topology edits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoDelta {
    /// Epoch at which the edits take effect — the same integer timeline
    /// as [`netgraph::fault::FaultSchedule`] epochs.
    pub epoch: u32,
    /// Edits, applied in order.
    pub ops: Vec<DeltaOp>,
}

/// A serializable multi-epoch growth history: epochal [`TopoDelta`]s
/// against a base topology, with epochs strictly increasing.
///
/// Produced by [`evolve`], consumed by [`DeltaStream::lower`] (pure
/// graph deltas for the selection machinery) and [`materialize`] (a full
/// [`Internet`] with consistent relationship metadata).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaStream {
    /// Vertex count of the base topology (epoch 0).
    base_nodes: usize,
    deltas: Vec<TopoDelta>,
}

impl DeltaStream {
    /// An empty stream over a base topology with `base_nodes` vertices.
    pub fn new(base_nodes: usize) -> Self {
        DeltaStream {
            base_nodes,
            deltas: Vec::new(),
        }
    }

    /// Append one epoch of edits.
    ///
    /// # Panics
    ///
    /// Panics if `delta.epoch` does not exceed the previous epoch.
    pub fn push(&mut self, delta: TopoDelta) {
        if let Some(last) = self.deltas.last() {
            assert!(
                delta.epoch > last.epoch,
                "epoch {} does not advance past {}",
                delta.epoch,
                last.epoch
            );
        }
        self.deltas.push(delta);
    }

    /// Vertex count of the base topology.
    pub fn base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// The epochal deltas, epoch-ascending.
    pub fn deltas(&self) -> &[TopoDelta] {
        &self.deltas
    }

    /// One past the last epoch (`0` for an empty stream) — the number of
    /// epochs a replay must cover.
    pub fn horizon(&self) -> u32 {
        self.deltas.last().map_or(0, |d| d.epoch + 1)
    }

    /// Vertex count after the whole stream (births append ids, deaths
    /// tombstone in place).
    pub fn final_node_count(&self) -> usize {
        self.base_nodes + self.births()
    }

    /// Total vertices born across the stream.
    pub fn births(&self) -> usize {
        self.deltas
            .iter()
            .flat_map(|d| &d.ops)
            .filter(|op| matches!(op, DeltaOp::IxpBirth { .. } | DeltaOp::AsBirth { .. }))
            .count()
    }

    /// Total ops across the stream.
    pub fn op_count(&self) -> usize {
        self.deltas.iter().map(|d| d.ops.len()).sum()
    }

    /// Lower every epoch to a pure [`GraphDelta`] (one per [`TopoDelta`],
    /// same order). Relationship flips lower to nothing; births allocate
    /// ids in op order.
    ///
    /// # Panics
    ///
    /// Panics if an op references a vertex outside the running id range.
    pub fn lower(&self) -> Vec<GraphDelta> {
        let mut running = self.base_nodes;
        let mut out = Vec::with_capacity(self.deltas.len());
        for td in &self.deltas {
            let () = netgraph::counter!("evolve.epochs");
            let () = netgraph::counter!("evolve.delta_ops", td.ops.len() as u64);
            let mut d = GraphDelta::new(running);
            for op in &td.ops {
                match op {
                    DeltaOp::IxpBirth { .. } => {
                        d.add_node();
                    }
                    DeltaOp::AsBirth { providers, .. } => {
                        let v = d.add_node();
                        for &p in providers {
                            d.add_edge(v, p);
                        }
                    }
                    DeltaOp::AsDeath { node } => d.remove_node(*node),
                    DeltaOp::Membership { member, ixp }
                    | DeltaOp::RemotePeering { member, ixp } => d.add_edge(*member, *ixp),
                    DeltaOp::Link { a, b, .. } => d.add_edge(*a, *b),
                    DeltaOp::Unlink { a, b } => d.remove_edge(*a, *b),
                    DeltaOp::RelFlip { .. } => {}
                }
            }
            running = d.node_count_after();
            out.push(d);
        }
        out
    }
}

impl crate::Validate for DeltaStream {
    /// Structural invariants a JSON-loaded stream must satisfy before
    /// replay: strictly increasing epochs, vertex references inside the
    /// running id range, non-empty names for newborns.
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("topology::DeltaStream");
        rep.check(
            "evolve.epochs-strictly-increasing",
            self.deltas.windows(2).all(|w| w[0].epoch < w[1].epoch),
            || "a delta's epoch does not advance past its predecessor".into(),
        );
        let mut running = self.base_nodes;
        let mut refs_ok = true;
        let mut names_ok = true;
        for td in &self.deltas {
            for op in &td.ops {
                let mut check = |v: NodeId| refs_ok &= v.index() < running;
                match op {
                    DeltaOp::IxpBirth { name } => {
                        names_ok &= !name.is_empty();
                        running += 1;
                    }
                    DeltaOp::AsBirth {
                        name, providers, ..
                    } => {
                        names_ok &= !name.is_empty();
                        for &p in providers {
                            check(p);
                        }
                        running += 1;
                    }
                    DeltaOp::AsDeath { node } => check(*node),
                    DeltaOp::Membership { member, ixp }
                    | DeltaOp::RemotePeering { member, ixp } => {
                        check(*member);
                        check(*ixp);
                    }
                    DeltaOp::Link { a, b, .. }
                    | DeltaOp::Unlink { a, b }
                    | DeltaOp::RelFlip { a, b, .. } => {
                        check(*a);
                        check(*b);
                    }
                }
            }
        }
        rep.check("evolve.refs-in-range", refs_ok, || {
            "an op references a vertex outside the running id range".into()
        });
        rep.check("evolve.names-nonempty", names_ok, || {
            "a newborn vertex has an empty name".into()
        });
        rep
    }
}

/// Per-epoch intensities of the growth model. All counts are *attempts
/// per epoch*; an attempt that cannot find a valid target (e.g. a
/// duplicate edge) is skipped, so realized counts may be slightly lower.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrowthConfig {
    /// Number of epochs to generate (epochs `1..=epochs`; epoch 0 is the
    /// base topology).
    pub epochs: u32,
    /// New exchange points per epoch.
    pub ixp_births: usize,
    /// Founding memberships seeded into each newborn IXP.
    pub new_ixp_members: usize,
    /// New stub ASes per epoch (each multihomes to 1–3 providers).
    pub as_births: usize,
    /// Stub ASes ceasing operation per epoch.
    pub as_deaths: usize,
    /// New local IXP memberships per epoch.
    pub memberships: usize,
    /// New remote-peering attachments per epoch.
    pub remote_peerings: usize,
    /// AS–AS links whose business relationship flips per epoch.
    pub rel_flips: usize,
}

impl GrowthConfig {
    /// Intensities proportional to topology size, calibrated so a
    /// quarter-scale Internet sees on the order of a hundred edits per
    /// epoch — brisk growth, in line with the sustained IXP/membership
    /// expansion documented over multi-year windows.
    pub fn calibrated(epochs: u32, node_count: usize) -> Self {
        GrowthConfig {
            epochs,
            ixp_births: 1,
            new_ixp_members: (node_count / 600).max(4),
            as_births: (node_count / 500).max(2),
            as_deaths: (node_count / 2000).max(1),
            memberships: (node_count / 400).max(4),
            remote_peerings: (node_count / 800).max(2),
            rel_flips: (node_count / 800).max(2),
        }
    }
}

/// Mutable bookkeeping the generator threads through the epochs.
struct Evolver {
    rng: ChaCha8Rng,
    kinds: Vec<NodeKind>,
    alive: Vec<bool>,
    /// Normalized existing edge keys (kept exact so the generator never
    /// proposes a duplicate edge with a conflicting relationship).
    edges: BTreeSet<(u32, u32)>,
    /// Relationship per existing edge, oriented for the normalized key.
    rels: BTreeMap<(u32, u32), Relationship>,
    /// Adjacency, maintained so deaths can withdraw incident links
    /// without scanning the whole edge set.
    adj: BTreeMap<u32, BTreeSet<u32>>,
    ixps: Vec<u32>,
    providers: Vec<u32>,
}

impl Evolver {
    fn link(&mut self, a: u32, b: u32, rel_from_a: Relationship) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        if a == b || !self.edges.insert(key) {
            return false;
        }
        let oriented = if a < b {
            rel_from_a
        } else {
            rel_from_a.reversed()
        };
        self.rels.insert(key, oriented);
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
        true
    }

    fn born(&mut self, kind: NodeKind) -> u32 {
        let id = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.alive.push(true);
        id
    }

    /// A random living AS, or `None` after bounded retries.
    fn pick_as(&mut self) -> Option<u32> {
        for _ in 0..32 {
            let v = self.rng.gen_range(0..self.kinds.len() as u32);
            if self.alive[v as usize] && self.kinds[v as usize].is_as() {
                return Some(v);
            }
        }
        None
    }

    /// A random living *stub* AS (provider core and IXPs never die).
    fn pick_stub(&mut self) -> Option<u32> {
        for _ in 0..32 {
            let v = self.rng.gen_range(0..self.kinds.len() as u32);
            if self.alive[v as usize]
                && matches!(
                    self.kinds[v as usize],
                    NodeKind::Access | NodeKind::Content | NodeKind::Enterprise
                )
            {
                return Some(v);
            }
        }
        None
    }
}

/// Run the seeded growth model over `net` for `cfg.epochs` epochs and
/// emit the resulting [`DeltaStream`]. Deterministic in `(net, cfg,
/// seed)`.
///
/// Per epoch the model applies, in order: IXP births (each seeded with
/// founding members), stub AS births (multihoming to 1–3 providers),
/// stub AS deaths, local membership growth, remote-peering attachments,
/// and relationship flips (paid links settling into peering and back).
pub fn evolve(net: &Internet, cfg: &GrowthConfig, seed: u64) -> DeltaStream {
    let g = net.graph();
    let mut ev = Evolver {
        rng: ChaCha8Rng::seed_from_u64(seed),
        kinds: net.kinds().to_vec(),
        alive: vec![true; g.node_count()],
        edges: g
            .edges()
            .map(|(u, v)| netgraph::undirected_key(u, v))
            .collect(),
        rels: net
            .relationships()
            .iter()
            .map(|&(a, b, rel)| ((a.0, b.0), rel))
            .collect(),
        adj: BTreeMap::new(),
        ixps: Vec::new(),
        providers: Vec::new(),
    };
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            ev.adj.entry(v.0).or_default().insert(u.0);
        }
        match net.kind(v) {
            NodeKind::Ixp => ev.ixps.push(v.0),
            NodeKind::Tier1 | NodeKind::Transit => ev.providers.push(v.0),
            _ => {}
        }
    }

    let mut stream = DeltaStream::new(g.node_count());
    for epoch in 1..=cfg.epochs {
        let mut ops: Vec<DeltaOp> = Vec::new();

        // IXP births, each seeded with founding memberships.
        for i in 0..cfg.ixp_births {
            let ixp = ev.born(NodeKind::Ixp);
            ev.ixps.push(ixp);
            ops.push(DeltaOp::IxpBirth {
                name: format!("IXP-e{epoch}-{i}"),
            });
            for _ in 0..cfg.new_ixp_members {
                let Some(m) = ev.pick_as() else { continue };
                if ev.link(m, ixp, Relationship::IxpMembership) {
                    ops.push(DeltaOp::Membership {
                        member: NodeId(m),
                        ixp: NodeId(ixp),
                    });
                }
            }
        }

        // Stub AS births, multihomed to 1-3 providers (the same
        // multihoming shape as the base generator).
        for i in 0..cfg.as_births {
            let roll: f64 = ev.rng.gen_range(0.0..1.0);
            let kind = if roll < 0.05 {
                NodeKind::Content
            } else if roll < 0.20 {
                NodeKind::Enterprise
            } else {
                NodeKind::Access
            };
            let degree = 1
                + (ev.rng.gen_range(0.0..1.0) < 0.45) as usize
                + (ev.rng.gen_range(0.0..1.0) < 0.15) as usize;
            let v = ev.born(kind);
            let mut providers: Vec<NodeId> = Vec::new();
            for _ in 0..degree {
                let p = ev.providers[ev.rng.gen_range(0..ev.providers.len())];
                if ev.link(v, p, Relationship::CustomerOfB) {
                    providers.push(NodeId(p));
                }
            }
            ops.push(DeltaOp::AsBirth {
                kind,
                name: format!("AS-e{epoch}-{i}"),
                providers,
            });
        }

        // Stub deaths: withdraw every incident link, tombstone the id.
        for _ in 0..cfg.as_deaths {
            let Some(v) = ev.pick_stub() else { continue };
            ev.alive[v as usize] = false;
            if let Some(nbs) = ev.adj.remove(&v) {
                for u in nbs {
                    let key = if v < u { (v, u) } else { (u, v) };
                    ev.edges.remove(&key);
                    ev.rels.remove(&key);
                    if let Some(back) = ev.adj.get_mut(&u) {
                        back.remove(&v);
                    }
                }
            }
            ops.push(DeltaOp::AsDeath { node: NodeId(v) });
        }

        // Local membership growth.
        for _ in 0..cfg.memberships {
            let (Some(m), false) = (ev.pick_as(), ev.ixps.is_empty()) else {
                continue;
            };
            let ixp = ev.ixps[ev.rng.gen_range(0..ev.ixps.len())];
            if ev.link(m, ixp, Relationship::IxpMembership) {
                ops.push(DeltaOp::Membership {
                    member: NodeId(m),
                    ixp: NodeId(ixp),
                });
            }
        }

        // Remote-peering attachments: same fabric edge, distinct driver.
        for _ in 0..cfg.remote_peerings {
            let (Some(m), false) = (ev.pick_as(), ev.ixps.is_empty()) else {
                continue;
            };
            let ixp = ev.ixps[ev.rng.gen_range(0..ev.ixps.len())];
            if ev.link(m, ixp, Relationship::IxpMembership) {
                ops.push(DeltaOp::RemotePeering {
                    member: NodeId(m),
                    ixp: NodeId(ixp),
                });
            }
        }

        // Relationship flips on existing AS-AS links: paid transit
        // settles into peering, peering un-settles back.
        for _ in 0..cfg.rel_flips {
            let Some(m) = ev.pick_as() else { continue };
            let Some(nbs) = ev.adj.get(&m) else { continue };
            let candidates: Vec<u32> = nbs
                .iter()
                .copied()
                .filter(|&u| ev.kinds[u as usize].is_as())
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let u = candidates[ev.rng.gen_range(0..candidates.len())];
            let key = if m < u { (m, u) } else { (u, m) };
            let Some(&old) = ev.rels.get(&key) else {
                continue;
            };
            let new = match old {
                Relationship::Peer => Relationship::CustomerOfB,
                Relationship::CustomerOfB | Relationship::ProviderOfB => Relationship::Peer,
                Relationship::IxpMembership => continue,
            };
            ev.rels.insert(key, new);
            ops.push(DeltaOp::RelFlip {
                a: NodeId(key.0),
                b: NodeId(key.1),
                rel: new,
            });
        }

        stream.push(TopoDelta { epoch, ops });
    }
    stream
}

/// Replay `stream` over `net` and assemble the final-epoch [`Internet`]:
/// graph, kinds, names and relationship list all evolved consistently.
/// `Internet::from_parts` re-asserts that the relationship list covers
/// the evolved edge set exactly, so a bookkeeping divergence between the
/// graph lowering and the relationship replay panics here.
///
/// # Panics
///
/// Panics if the stream does not apply to `net` (base size mismatch,
/// out-of-range references, conflicting relationships).
pub fn materialize(net: &Internet, stream: &DeltaStream) -> Internet {
    assert_eq!(
        net.graph().node_count(),
        stream.base_nodes(),
        "stream was generated against a {}-vertex topology",
        stream.base_nodes()
    );
    let mut graph = net.graph().clone();
    for d in stream.lower() {
        graph = graph.apply_delta(&d);
    }

    let mut kinds = net.kinds().to_vec();
    let mut names = net.names().to_vec();
    let mut rels: BTreeMap<(u32, u32), Relationship> = net
        .relationships()
        .iter()
        .map(|&(a, b, rel)| ((a.0, b.0), rel))
        .collect();
    let insert = |rels: &mut BTreeMap<(u32, u32), Relationship>,
                  a: u32,
                  b: u32,
                  rel_from_a: Relationship| {
        let (key, oriented) = if a < b {
            ((a, b), rel_from_a)
        } else {
            ((b, a), rel_from_a.reversed())
        };
        rels.insert(key, oriented);
    };
    for td in stream.deltas() {
        for op in &td.ops {
            match op {
                DeltaOp::IxpBirth { name } => {
                    kinds.push(NodeKind::Ixp);
                    names.push(name.clone());
                }
                DeltaOp::AsBirth {
                    kind,
                    name,
                    providers,
                } => {
                    let v = kinds.len() as u32;
                    kinds.push(*kind);
                    names.push(name.clone());
                    for p in providers {
                        insert(&mut rels, v, p.0, Relationship::CustomerOfB);
                    }
                }
                DeltaOp::AsDeath { node } => {
                    let v = node.0;
                    rels.retain(|&(a, b), _| a != v && b != v);
                }
                DeltaOp::Membership { member, ixp } | DeltaOp::RemotePeering { member, ixp } => {
                    insert(&mut rels, member.0, ixp.0, Relationship::IxpMembership);
                }
                DeltaOp::Link { a, b, rel } => insert(&mut rels, a.0, b.0, *rel),
                DeltaOp::Unlink { a, b } => {
                    let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
                    rels.remove(&key);
                }
                DeltaOp::RelFlip { a, b, rel } => insert(&mut rels, a.0, b.0, *rel),
            }
        }
    }
    let rels: Vec<(NodeId, NodeId, Relationship)> = rels
        .into_iter()
        .map(|((a, b), rel)| (NodeId(a), NodeId(b), rel))
        .collect();
    Internet::from_parts(graph, kinds, names, rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};

    fn setup() -> (Internet, InternetConfig) {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        (cfg.generate(77), cfg)
    }

    #[test]
    fn snapshot_keeps_providers_and_ixps() {
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.5);
        // All providers and IXPs survive; about half the stubs.
        let kinds = old.kinds();
        let providers = kinds
            .iter()
            .filter(|k| matches!(k, NodeKind::Tier1 | NodeKind::Transit))
            .count();
        assert_eq!(providers, cfg.n_tier1 + cfg.n_transit);
        assert_eq!(old.ixp_count(), cfg.n_ixp);
        let stubs = old.as_count() - providers;
        assert!(
            (stubs as f64 - cfg.n_stub as f64 * 0.5).abs() < 2.0,
            "stub count {stubs}"
        );
        // Map is consistent.
        for (new, &oldid) in map.iter().enumerate() {
            assert_eq!(old.kind(NodeId(new as u32)), net.kind(oldid));
            assert_eq!(old.name(NodeId(new as u32)), net.name(oldid));
        }
    }

    #[test]
    fn snapshot_relationships_consistent() {
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.6);
        assert_eq!(old.relationships().len(), old.graph().edge_count());
        // Spot-check relationship preservation through the map.
        for &(a, b, rel) in old.relationships().iter().take(200) {
            let (oa, ob) = (map[a.index()], map[b.index()]);
            assert_eq!(net.relationship(oa, ob), Some(rel));
        }
    }

    #[test]
    fn full_fraction_is_identity() {
        let (net, cfg) = setup();
        let (old, _) = historical_snapshot(&net, &cfg, 1.0);
        assert_eq!(old.graph().node_count(), net.graph().node_count());
        assert_eq!(old.graph().edge_count(), net.graph().edge_count());
    }

    #[test]
    fn selection_stable_across_growth() {
        // Brokers selected on the historical snapshot should overlap
        // heavily with brokers selected on the grown topology: the core
        // doesn't churn.
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.7);
        let k = 40;
        let now = brokerset::max_subgraph_greedy(net.graph(), k);
        let then = brokerset::max_subgraph_greedy(old.graph(), k);
        // Translate the old selection into current ids.
        let then_now = NodeSet::from_iter_with_capacity(
            net.graph().node_count(),
            then.order().iter().map(|&v| map[v.index()]),
        );
        let j = selection_jaccard(now.brokers(), &then_now);
        assert!(j > 0.5, "alliance churn too high: jaccard {j}");
    }

    #[test]
    fn jaccard_edges() {
        let a = NodeSet::from_iter_with_capacity(10, [NodeId(1), NodeId(2)]);
        let b = NodeSet::from_iter_with_capacity(10, [NodeId(2), NodeId(3)]);
        assert!((selection_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(selection_jaccard(&a, &a), 1.0);
        let empty = NodeSet::new(10);
        assert_eq!(selection_jaccard(&empty, &empty), 1.0);
    }

    #[test]
    #[should_panic(expected = "stub_fraction")]
    fn zero_fraction_rejected() {
        let (net, cfg) = setup();
        historical_snapshot(&net, &cfg, 0.0);
    }

    #[test]
    fn evolve_is_deterministic_and_valid() {
        use crate::Validate;
        let (net, _) = setup();
        let cfg = GrowthConfig::calibrated(6, net.graph().node_count());
        let a = evolve(&net, &cfg, 11);
        let b = evolve(&net, &cfg, 11);
        assert_eq!(a, b, "same seed must give the same stream");
        let c = evolve(&net, &cfg, 12);
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.audit().is_ok());
        assert_eq!(a.deltas().len(), 6);
        assert_eq!(a.horizon(), 7);
        assert!(a.births() >= 6, "at least the IXP births");
        assert!(a.op_count() > 0);
        assert_eq!(a.final_node_count(), net.graph().node_count() + a.births());
    }

    #[test]
    fn lower_and_materialize_agree() {
        let (net, _) = setup();
        let cfg = GrowthConfig::calibrated(5, net.graph().node_count());
        let stream = evolve(&net, &cfg, 3);
        // Fold the lowered graph deltas.
        let mut g = net.graph().clone();
        for d in stream.lower() {
            g = g.apply_delta(&d);
        }
        assert_eq!(g.node_count(), stream.final_node_count());
        // materialize() rebuilds the same graph plus consistent
        // metadata — from_parts re-asserts rels cover the edge set.
        let evolved = materialize(&net, &stream);
        assert_eq!(evolved.graph(), &g);
        assert_eq!(evolved.kinds().len(), g.node_count());
        assert_eq!(evolved.relationships().len(), g.edge_count());
        // Newborn vertices carry epoch-stamped names and correct kinds.
        let newborn = stream
            .deltas()
            .iter()
            .flat_map(|d| &d.ops)
            .find_map(|op| match op {
                DeltaOp::IxpBirth { name } => Some(name.clone()),
                _ => None,
            })
            .expect("an IXP was born");
        assert!(evolved.names().contains(&newborn));
        assert!(newborn.starts_with("IXP-e"), "epoch-numbered name");
    }

    #[test]
    fn deaths_tombstone_in_place() {
        let (net, _) = setup();
        let mut cfg = GrowthConfig::calibrated(3, net.graph().node_count());
        cfg.as_deaths = 10;
        let stream = evolve(&net, &cfg, 9);
        let dead: Vec<NodeId> = stream
            .deltas()
            .iter()
            .flat_map(|d| &d.ops)
            .filter_map(|op| match op {
                DeltaOp::AsDeath { node } => Some(*node),
                _ => None,
            })
            .collect();
        assert!(!dead.is_empty(), "deaths should occur at this intensity");
        let evolved = materialize(&net, &stream);
        for v in dead {
            assert_eq!(evolved.graph().degree(v), 0, "dead AS {v} keeps no links");
            assert!(evolved.kind(v).is_as(), "tombstone keeps its metadata");
        }
    }

    #[test]
    fn stream_json_round_trips_bit_identically() {
        let (net, _) = setup();
        let cfg = GrowthConfig::calibrated(4, net.graph().node_count());
        let stream = evolve(&net, &cfg, 21);
        let json = serde_json::to_string(&stream).expect("serialize");
        let back: DeltaStream = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, stream);
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);
    }

    #[test]
    fn stream_audit_detects_corruption() {
        use crate::Validate;
        let mut s = DeltaStream::new(10);
        s.push(TopoDelta {
            epoch: 1,
            ops: vec![DeltaOp::AsDeath { node: NodeId(3) }],
        });
        assert!(s.audit().is_ok());
        // Out-of-range reference.
        let mut bad = s.clone();
        bad.deltas[0].ops.push(DeltaOp::Unlink {
            a: NodeId(0),
            b: NodeId(99),
        });
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "evolve.refs-in-range"));
        // Non-advancing epoch.
        let mut bad = s.clone();
        bad.deltas.push(TopoDelta {
            epoch: 1,
            ops: Vec::new(),
        });
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "evolve.epochs-strictly-increasing"));
        // Empty newborn name.
        let mut bad = s;
        bad.deltas[0].ops.push(DeltaOp::IxpBirth {
            name: String::new(),
        });
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "evolve.names-nonempty"));
    }

    #[test]
    #[should_panic(expected = "does not advance")]
    fn non_advancing_push_rejected() {
        let mut s = DeltaStream::new(5);
        s.push(TopoDelta {
            epoch: 2,
            ops: Vec::new(),
        });
        s.push(TopoDelta {
            epoch: 2,
            ops: Vec::new(),
        });
    }
}
