//! Calibrated synthetic AS-level Internet generator.
//!
//! The paper's dataset (Table 2): 51,757 ASes + 322 IXPs, 347,332 AS–AS
//! connections, 55,282 AS–IXP membership links, a giant component of
//! 51,895 vertices, 40.2 % of ASes directly attached to an IXP, and the
//! (0.99, 4) small-world property. [`InternetConfig::generate`] produces a
//! topology with those aggregate properties from a deterministic seed:
//!
//! 1. a tier-1 clique (settlement-free core);
//! 2. a transit hierarchy with Zipf "attractiveness" weights — transit
//!    AS *i* attracts customers proportionally to `(i + 1)^-z`, giving
//!    the heavy-tailed provider degree distribution the broker-coverage
//!    results depend on;
//! 3. stub ASes (access / content / enterprise) multihoming to 1–3
//!    providers;
//! 4. a settlement-free peer mesh among the top providers plus
//!    weight-biased random peering, filling the AS–AS edge budget;
//! 5. 322 IXPs with Zipf-sized memberships filling the membership budget,
//!    every provider joining a few exchanges and a configurable fraction
//!    of stubs joining their regional one;
//! 6. a sprinkle of 2-node islands outside the giant component (the real
//!    snapshot has 184 vertices outside it).

use crate::stats::TopologyStats;
use crate::taxonomy::{NodeKind, Relationship, Tier};
use netgraph::{Graph, GraphBuilder, NodeId, NodeSet};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Preset sizes for [`InternetConfig::scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's full 2014 snapshot: 51,757 ASes + 322 IXPs.
    Full,
    /// One-quarter scale (~13 k nodes): the default for tests and CI
    /// benches; broker budgets scale proportionally.
    Quarter,
    /// ~1 k nodes: unit-test scale.
    Tiny,
}

/// Parameters of the synthetic Internet generator.
///
/// `scaled` gives the calibrated presets; fields are public so studies can
/// perturb a single knob (e.g. the Zipf exponent) for ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Number of tier-1 backbone ASes (clique).
    pub n_tier1: usize,
    /// Number of transit/access providers below tier-1.
    pub n_transit: usize,
    /// Number of stub ASes (access + content + enterprise).
    pub n_stub: usize,
    /// Number of IXPs.
    pub n_ixp: usize,
    /// Target number of AS–AS edges (including the hierarchy links).
    pub target_as_edges: usize,
    /// Target number of AS–IXP membership links.
    pub target_memberships: usize,
    /// Fraction of stubs that are content providers.
    pub frac_content: f64,
    /// Fraction of stubs that are enterprises.
    pub frac_enterprise: f64,
    /// Fraction of stubs joining at least one IXP (providers always join).
    pub frac_member_stubs: f64,
    /// Fraction of stubs placed in 2-node islands outside the giant
    /// component.
    pub frac_isolated: f64,
    /// Zipf exponent of transit attractiveness weights.
    pub zipf_exponent: f64,
    /// Per-tier-1 attractiveness weight (relative to top transit = 1).
    pub tier1_weight: f64,
    /// Probabilities that a stub has 1, 2 or 3 providers.
    pub stub_multihoming: [f64; 3],
    /// Number of top providers fully meshed with settlement-free peering.
    pub top_peer_mesh: usize,
}

impl InternetConfig {
    /// Calibrated preset for a [`Scale`].
    pub fn scaled(scale: Scale) -> Self {
        match scale {
            Scale::Full => InternetConfig {
                n_tier1: 12,
                n_transit: 3500,
                n_stub: 51_757 - 12 - 3500,
                n_ixp: 322,
                target_as_edges: 347_332,
                target_memberships: 55_282,
                frac_content: 0.05,
                frac_enterprise: 0.15,
                frac_member_stubs: 0.33,
                frac_isolated: 0.0036,
                zipf_exponent: 0.8,
                tier1_weight: 0.55,
                stub_multihoming: [0.55, 0.35, 0.10],
                top_peer_mesh: 150,
            },
            Scale::Quarter => InternetConfig {
                n_tier1: 12,
                n_transit: 875,
                n_stub: 12_940 - 12 - 875,
                n_ixp: 80,
                target_as_edges: 86_833,
                target_memberships: 13_820,
                frac_content: 0.05,
                frac_enterprise: 0.15,
                frac_member_stubs: 0.33,
                frac_isolated: 0.0036,
                zipf_exponent: 0.8,
                tier1_weight: 0.55,
                stub_multihoming: [0.55, 0.35, 0.10],
                top_peer_mesh: 75,
            },
            Scale::Tiny => InternetConfig {
                n_tier1: 5,
                n_transit: 80,
                n_stub: 1000,
                n_ixp: 12,
                target_as_edges: 7_000,
                target_memberships: 1_100,
                frac_content: 0.05,
                frac_enterprise: 0.15,
                frac_member_stubs: 0.33,
                frac_isolated: 0.004,
                zipf_exponent: 0.8,
                tier1_weight: 0.55,
                stub_multihoming: [0.55, 0.35, 0.10],
                top_peer_mesh: 25,
            },
        }
    }

    /// Total AS count.
    pub fn as_count(&self) -> usize {
        self.n_tier1 + self.n_transit + self.n_stub
    }

    /// Total vertex count (ASes + IXPs).
    pub fn node_count(&self) -> usize {
        self.as_count() + self.n_ixp
    }

    /// Generate a topology from this configuration and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`InternetConfig::validate`]).
    pub fn generate(&self, seed: u64) -> Internet {
        let () = netgraph::counter!("topology.generations");
        if let Err(e) = self.validate() {
            panic!("invalid InternetConfig: {e}");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Generator::new(self, &mut rng).run();
        // Full topology invariant audit at the generation boundary
        // (debug builds only).
        netgraph::validate::debug_validate(&net);
        net
    }

    /// Check configuration consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tier1 < 2 {
            return Err("need at least 2 tier-1 ASes".into());
        }
        if self.n_transit == 0 || self.n_stub == 0 {
            return Err("need transit and stub ASes".into());
        }
        if self.frac_content + self.frac_enterprise > 1.0 {
            return Err("content + enterprise fractions exceed 1".into());
        }
        for f in [
            self.frac_content,
            self.frac_enterprise,
            self.frac_member_stubs,
            self.frac_isolated,
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction {f} outside [0, 1]"));
            }
        }
        let s: f64 = self.stub_multihoming.iter().sum();
        if (s - 1.0).abs() > 1e-9 {
            return Err(format!("stub_multihoming must sum to 1, got {s}"));
        }
        if self.zipf_exponent <= 0.0 {
            return Err("zipf_exponent must be positive".into());
        }
        if self.top_peer_mesh > self.n_tier1 + self.n_transit {
            return Err("top_peer_mesh larger than provider pool".into());
        }
        Ok(())
    }
}

/// A generated (or loaded) AS/IXP topology with metadata.
///
/// Vertex layout: tier-1 ASes first, then transit, then stubs, then IXPs.
/// The combined graph contains both direct AS–AS connections and AS–IXP
/// membership links, mirroring the paper's treatment of IXPs as
/// independent vertices ("ASesWithIXPs"); [`Internet::without_ixps`]
/// recovers the AS-only view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Internet {
    graph: Graph,
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    /// Canonical relationship list: `(a, b, rel)` with `a < b`, sorted.
    rels: Vec<(NodeId, NodeId, Relationship)>,
}

impl Internet {
    /// Assemble an `Internet` from parts (used by the generator, snapshot
    /// loading, and hand-built test fixtures).
    ///
    /// # Panics
    ///
    /// Panics if the metadata lengths disagree with the graph, or if the
    /// relationship list doesn't cover the edge set exactly.
    pub fn from_parts(
        graph: Graph,
        kinds: Vec<NodeKind>,
        names: Vec<String>,
        mut rels: Vec<(NodeId, NodeId, Relationship)>,
    ) -> Self {
        assert_eq!(graph.node_count(), kinds.len(), "kinds length mismatch");
        assert_eq!(graph.node_count(), names.len(), "names length mismatch");
        for r in rels.iter_mut() {
            if r.0 > r.1 {
                *r = (r.1, r.0, r.2.reversed());
            }
        }
        rels.sort_unstable_by_key(|r| (r.0, r.1));
        // Duplicates are only tolerated when they agree — silently keeping
        // one of two conflicting orientations would corrupt the policy
        // layer downstream.
        for w in rels.windows(2) {
            if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
                assert_eq!(
                    w[0].2, w[1].2,
                    "conflicting relationships for edge ({}, {})",
                    w[0].0, w[0].1
                );
            }
        }
        rels.dedup_by_key(|r| (r.0, r.1));
        assert_eq!(
            rels.len(),
            graph.edge_count(),
            "relationship list must cover every edge exactly once"
        );
        Internet {
            graph,
            kinds,
            names,
            rels,
        }
    }

    /// The combined AS + IXP graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Kind of vertex `v`.
    pub fn kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v.index()]
    }

    /// All vertex kinds, indexed by id.
    pub fn kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// Human-readable name of vertex `v`.
    pub fn name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// All vertex names, indexed by id.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Tier of vertex `v` (see [`Tier::of`]).
    pub fn tier(&self, v: NodeId) -> Tier {
        Tier::of(self.kind(v))
    }

    /// Number of AS vertices.
    pub fn as_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_as()).count()
    }

    /// Number of IXP vertices.
    pub fn ixp_count(&self) -> usize {
        self.kinds.len() - self.as_count()
    }

    /// The set of IXP vertices.
    pub fn ixps(&self) -> NodeSet {
        let mut s = NodeSet::new(self.graph.node_count());
        for v in self.graph.nodes() {
            if self.kind(v) == NodeKind::Ixp {
                s.insert(v);
            }
        }
        s
    }

    /// The tier-1 AS vertices.
    pub fn tier1s(&self) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&v| self.kind(v) == NodeKind::Tier1)
            .collect()
    }

    /// The canonical `(a, b, rel)` edge-relationship list (`a < b`,
    /// sorted ascending).
    pub fn relationships(&self) -> &[(NodeId, NodeId, Relationship)] {
        &self.rels
    }

    /// Relationship on edge `{u, v}`, oriented from `u`'s perspective
    /// (e.g. `CustomerOfB` means `u` is `v`'s customer). `None` if the
    /// edge doesn't exist.
    pub fn relationship(&self, u: NodeId, v: NodeId) -> Option<Relationship> {
        let (a, b, flip) = if u < v { (u, v, false) } else { (v, u, true) };
        let idx = self
            .rels
            .binary_search_by_key(&(a, b), |r| (r.0, r.1))
            .ok()?;
        let rel = self.rels[idx].2;
        Some(if flip { rel.reversed() } else { rel })
    }

    /// The AS-only subgraph ("ASesWithoutIXPs" in Table 3) and the map
    /// from new ids to original ids.
    pub fn without_ixps(&self) -> (Graph, Vec<NodeId>) {
        let mut keep = NodeSet::new(self.graph.node_count());
        for v in self.graph.nodes() {
            if self.kind(v).is_as() {
                keep.insert(v);
            }
        }
        self.graph.induced_subgraph(&keep)
    }

    /// Table 2 style statistics.
    pub fn stats(&self) -> TopologyStats {
        TopologyStats::compute(self)
    }
}

/// City names for synthetic IXP labels, roughly by real-world exchange
/// size so that "IXP Frankfurt" ends up big.
const IXP_CITIES: &[&str] = &[
    "Frankfurt",
    "Amsterdam",
    "London",
    "Sao Paulo",
    "Moscow",
    "Palo Alto",
    "Tokyo",
    "Hong Kong",
    "Singapore",
    "New York",
    "Chicago",
    "Paris",
    "Stockholm",
    "Warsaw",
    "Prague",
    "Vienna",
    "Milan",
    "Madrid",
    "Seattle",
    "Toronto",
];

struct Generator<'a, R: Rng> {
    cfg: &'a InternetConfig,
    rng: &'a mut R,
    /// Attractiveness weight of each provider-pool member
    /// (tier-1s then transit, ids 0..n_tier1+n_transit).
    provider_weights: Vec<f64>,
    edges: HashSet<(u32, u32)>,
    rels: Vec<(NodeId, NodeId, Relationship)>,
}

impl<'a, R: Rng> Generator<'a, R> {
    fn new(cfg: &'a InternetConfig, rng: &'a mut R) -> Self {
        let mut provider_weights = Vec::with_capacity(cfg.n_tier1 + cfg.n_transit);
        provider_weights.extend(std::iter::repeat_n(cfg.tier1_weight, cfg.n_tier1));
        provider_weights
            .extend((0..cfg.n_transit).map(|i| ((i + 1) as f64).powf(-cfg.zipf_exponent)));
        Generator {
            cfg,
            rng,
            provider_weights,
            edges: HashSet::new(),
            rels: Vec::new(),
        }
    }

    fn add_edge(&mut self, a: usize, b: usize, rel: Relationship) -> bool {
        if a == b {
            return false;
        }
        let key = (a.min(b) as u32, a.max(b) as u32);
        if !self.edges.insert(key) {
            return false;
        }
        let rel = if (a as u32, b as u32) == key {
            rel
        } else {
            rel.reversed()
        };
        self.rels.push((NodeId(key.0), NodeId(key.1), rel));
        true
    }

    fn run(mut self) -> Internet {
        let cfg = self.cfg;
        let n_providers = cfg.n_tier1 + cfg.n_transit;
        let n_as = cfg.as_count();
        let n_total = cfg.node_count();

        // --- Kinds and names -------------------------------------------------
        let mut kinds = Vec::with_capacity(n_total);
        let mut names = Vec::with_capacity(n_total);
        for i in 0..cfg.n_tier1 {
            kinds.push(NodeKind::Tier1);
            names.push(format!("Backbone-{i}"));
        }
        for i in 0..cfg.n_transit {
            kinds.push(NodeKind::Transit);
            names.push(format!("Transit-{i}"));
        }
        let n_isolated = ((cfg.n_stub as f64 * cfg.frac_isolated) as usize) & !1; // even
        let n_content = (cfg.n_stub as f64 * cfg.frac_content) as usize;
        let n_enterprise = (cfg.n_stub as f64 * cfg.frac_enterprise) as usize;
        for i in 0..cfg.n_stub {
            // Content first, then enterprise, then access; the isolated
            // tail is carved from access stubs.
            if i < n_content {
                kinds.push(NodeKind::Content);
                names.push(format!("Content-{i}"));
            } else if i < n_content + n_enterprise {
                kinds.push(NodeKind::Enterprise);
                names.push(format!("Enterprise-{}", i - n_content));
            } else {
                kinds.push(NodeKind::Access);
                names.push(format!("Access-{}", i - n_content - n_enterprise));
            }
        }
        for i in 0..cfg.n_ixp {
            kinds.push(NodeKind::Ixp);
            let city = IXP_CITIES.get(i).copied();
            names.push(match city {
                Some(c) => format!("IXP {c}"),
                None => format!("IXP-{i}"),
            });
        }

        // --- Tier-1 clique ----------------------------------------------------
        for a in 0..cfg.n_tier1 {
            for b in (a + 1)..cfg.n_tier1 {
                self.add_edge(a, b, Relationship::Peer);
            }
        }

        // --- Transit hierarchy -------------------------------------------------
        // Transit i (global id n_tier1 + i) multihomes to 1–3 providers
        // chosen among tier-1s and higher-ranked transit, weight-biased.
        let pool_dist =
            WeightedIndex::new(self.provider_weights.clone()).expect("non-empty weights");
        for i in 0..cfg.n_transit {
            let me = cfg.n_tier1 + i;
            let n_up = 1
                + (self.rng.gen_range(0.0..1.0) < 0.6) as usize
                + (self.rng.gen_range(0.0..1.0) < 0.25) as usize;
            let mut attached = 0;
            let mut attempts = 0;
            while attached < n_up && attempts < 64 {
                attempts += 1;
                let p = pool_dist.sample(self.rng);
                // Hierarchy: only attach upwards (tier-1 or better-ranked
                // transit) to keep the provider DAG acyclic.
                if (p < cfg.n_tier1 || p < me) && self.add_edge(me, p, Relationship::CustomerOfB) {
                    attached += 1;
                }
            }
            if attached == 0 {
                // Guarantee connectivity to the core.
                let t1 = self.rng.gen_range(0..cfg.n_tier1);
                self.add_edge(me, t1, Relationship::CustomerOfB);
            }
        }

        // --- Stubs -------------------------------------------------------------
        let stub_base = n_providers;
        let first_isolated = cfg.n_stub - n_isolated;
        for s in 0..first_isolated {
            let me = stub_base + s;
            let roll: f64 = self.rng.gen_range(0.0..1.0);
            let n_up = if roll < cfg.stub_multihoming[0] {
                1
            } else if roll < cfg.stub_multihoming[0] + cfg.stub_multihoming[1] {
                2
            } else {
                3
            };
            let mut attached = 0;
            let mut attempts = 0;
            while attached < n_up && attempts < 64 {
                attempts += 1;
                let p = pool_dist.sample(self.rng);
                if self.add_edge(me, p, Relationship::CustomerOfB) {
                    attached += 1;
                }
            }
        }
        // Isolated islands: pair up the tail stubs with a single peer
        // edge; they never attach to the hierarchy.
        let mut island = stub_base + first_isolated;
        while island + 1 < stub_base + cfg.n_stub {
            self.add_edge(island, island + 1, Relationship::Peer);
            island += 2;
        }

        // --- Settlement-free mesh among top providers ---------------------------
        for a in 0..cfg.top_peer_mesh.min(n_providers) {
            for b in (a + 1)..cfg.top_peer_mesh.min(n_providers) {
                self.add_edge(a, b, Relationship::Peer);
            }
        }

        // --- Random peering to fill the AS–AS edge budget ----------------------
        // Two populations, mirroring how public route collectors see p2p
        // links: a core mesh among providers and content networks
        // (weight-biased), and a large volume of stub–stub peering among
        // the exchange-attached edge (route-server style multilateral
        // peering). Keeping stub peers *among stubs* preserves the
        // coverage tail: a stub is dominated through its provider, not
        // through an incidental hub adjacency.
        let remaining = cfg.target_as_edges.saturating_sub(self.edges.len());
        let core_budget = self.edges.len() + remaining * 3 / 10;

        // Core mesh endpoints: providers (dampened Zipf) + content stubs.
        let mut core_ids: Vec<usize> = (0..n_providers).collect();
        let mut core_weights: Vec<f64> =
            self.provider_weights.iter().map(|w| w.powf(0.6)).collect();
        for s in 0..first_isolated {
            if kinds[stub_base + s] == NodeKind::Content {
                core_ids.push(stub_base + s);
                core_weights.push(0.25 * ((s + 2) as f64).powf(-0.8));
            }
        }
        let core_dist = WeightedIndex::new(core_weights).expect("non-empty weights");
        let mut guard = 0usize;
        while self.edges.len() < core_budget && guard < cfg.target_as_edges * 20 {
            guard += 1;
            let a = core_ids[core_dist.sample(self.rng)];
            let b = core_ids[core_dist.sample(self.rng)];
            self.add_edge(a, b, Relationship::Peer);
        }

        // Edge mesh: stubs that peer (a heavy-tailed "peering appetite"
        // over the non-isolated stub population).
        let stub_peer_weights: Vec<f64> = (0..first_isolated)
            .map(|s| {
                // Shuffle-free pseudo-rank: hash the index so appetite is
                // uncorrelated with the content/enterprise split order.
                let r = (s.wrapping_mul(2654435761) % first_isolated.max(1)) + 1;
                (r as f64).powf(-0.5)
            })
            .collect();
        if first_isolated > 1 {
            let stub_dist = WeightedIndex::new(stub_peer_weights).expect("non-empty weights");
            let mut guard = 0usize;
            while self.edges.len() < cfg.target_as_edges && guard < cfg.target_as_edges * 20 {
                guard += 1;
                let a = stub_base + stub_dist.sample(self.rng);
                let b = stub_base + stub_dist.sample(self.rng);
                self.add_edge(a, b, Relationship::Peer);
            }
        }

        // --- IXP memberships ----------------------------------------------------
        // IXP j attracts members ∝ (j + 1)^-0.9; every provider joins a
        // couple of exchanges, a configurable fraction of stubs joins one.
        let ixp_base = n_as;
        if cfg.n_ixp > 0 {
            let ixp_weights: Vec<f64> = (0..cfg.n_ixp)
                .map(|j| ((j + 1) as f64).powf(-1.15))
                .collect();
            let ixp_dist = WeightedIndex::new(ixp_weights).expect("non-empty weights");

            // Member pool: all providers + sampled stubs (content always).
            let mut members: Vec<usize> = (0..n_providers).collect();
            for s in 0..first_isolated {
                let kind = kinds[stub_base + s];
                let join = match kind {
                    NodeKind::Content => true,
                    _ => self.rng.gen_range(0.0..1.0) < cfg.frac_member_stubs,
                };
                if join {
                    members.push(stub_base + s);
                }
            }
            // First pass: every member joins one exchange.
            for &m in &members {
                let j = ixp_dist.sample(self.rng);
                self.add_edge(m, ixp_base + j, Relationship::IxpMembership);
            }
            // Remaining budget: extra memberships, provider-biased.
            let member_extra_weights: Vec<f64> = members
                .iter()
                .map(|&m| if m < n_providers { 1.0 } else { 0.05 })
                .collect();
            let member_dist = WeightedIndex::new(member_extra_weights).expect("non-empty weights");
            let mut guard = 0usize;
            while self.rels.len() < cfg.target_as_edges + cfg.target_memberships
                && guard < cfg.target_memberships * 40
            {
                guard += 1;
                let m = members[member_dist.sample(self.rng)];
                let j = ixp_dist.sample(self.rng);
                self.add_edge(m, ixp_base + j, Relationship::IxpMembership);
            }
        }

        // --- Assemble -----------------------------------------------------------
        let mut b = GraphBuilder::with_capacity(n_total, self.rels.len());
        for &(u, v, _) in &self.rels {
            b.add_edge(u, v);
        }
        Internet::from_parts(b.build(), kinds, names, self.rels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Internet {
        InternetConfig::scaled(Scale::Tiny).generate(7)
    }

    #[test]
    fn presets_validate() {
        for s in [Scale::Full, Scale::Quarter, Scale::Tiny] {
            InternetConfig::scaled(s).validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = InternetConfig::scaled(Scale::Tiny);
        c.n_tier1 = 1;
        assert!(c.validate().is_err());

        let mut c = InternetConfig::scaled(Scale::Tiny);
        c.stub_multihoming = [0.5, 0.5, 0.5];
        assert!(c.validate().is_err());

        let mut c = InternetConfig::scaled(Scale::Tiny);
        c.frac_content = 0.9;
        c.frac_enterprise = 0.2;
        assert!(c.validate().is_err());

        let mut c = InternetConfig::scaled(Scale::Tiny);
        c.zipf_exponent = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn node_counts_match_config() {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        let net = cfg.generate(1);
        assert_eq!(net.graph().node_count(), cfg.node_count());
        assert_eq!(net.as_count(), cfg.as_count());
        assert_eq!(net.ixp_count(), cfg.n_ixp);
        assert_eq!(net.tier1s().len(), cfg.n_tier1);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        let a = cfg.generate(99);
        let b = cfg.generate(99);
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.relationships(), b.relationships());
        let c = cfg.generate(100);
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn edge_budgets_roughly_met() {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        let net = cfg.generate(3);
        let as_edges = net
            .relationships()
            .iter()
            .filter(|r| r.2 != Relationship::IxpMembership)
            .count();
        let memberships = net.relationships().len() - as_edges;
        assert!(
            (as_edges as f64) > 0.95 * cfg.target_as_edges as f64,
            "as_edges {as_edges} vs target {}",
            cfg.target_as_edges
        );
        assert!(
            (memberships as f64) > 0.8 * cfg.target_memberships as f64,
            "memberships {memberships} vs target {}",
            cfg.target_memberships
        );
    }

    #[test]
    fn relationship_lookup_orientation() {
        let net = tiny();
        // Find some customer->provider edge.
        let (a, b, rel) = *net
            .relationships()
            .iter()
            .find(|r| matches!(r.2, Relationship::CustomerOfB | Relationship::ProviderOfB))
            .expect("hierarchy edges exist");
        assert_eq!(net.relationship(a, b), Some(rel));
        assert_eq!(net.relationship(b, a), Some(rel.reversed()));
        assert_eq!(net.relationship(a, a), None);
    }

    #[test]
    fn ixps_only_have_membership_edges() {
        let net = tiny();
        for &(u, v, rel) in net.relationships() {
            let touches_ixp = net.kind(u) == NodeKind::Ixp || net.kind(v) == NodeKind::Ixp;
            if touches_ixp {
                assert_eq!(rel, Relationship::IxpMembership, "edge ({u}, {v})");
            } else {
                assert_ne!(rel, Relationship::IxpMembership, "edge ({u}, {v})");
            }
        }
    }

    #[test]
    fn giant_component_dominates() {
        let net = tiny();
        let comps = netgraph::connected_components(net.graph());
        let (_, giant) = comps.giant().unwrap();
        let frac = giant as f64 / net.graph().node_count() as f64;
        assert!(frac > 0.95, "giant fraction {frac}");
        assert!(frac < 1.0, "isolated islands should exist");
    }

    #[test]
    fn stub_degrees_small_provider_degrees_heavy() {
        let net = tiny();
        let g = net.graph();
        // Top provider should have a large neighborhood.
        let top_deg = g.degree(NodeId(InternetConfig::scaled(Scale::Tiny).n_tier1 as u32));
        assert!(
            top_deg > 30,
            "top transit degree {top_deg} suspiciously small"
        );
        // Access stubs keep small degree on average.
        let mut acc = 0usize;
        let mut cnt = 0usize;
        for v in g.nodes() {
            if net.kind(v) == NodeKind::Access {
                acc += g.degree(v);
                cnt += 1;
            }
        }
        let mean = acc as f64 / cnt as f64;
        // Stub-stub route-server peering gives access stubs a moderate
        // mean degree, but they must stay far below the provider head.
        assert!(mean < 15.0, "mean access degree {mean}");
        assert!(
            (top_deg as f64) > 5.0 * mean,
            "provider head degree {top_deg} should dwarf stub mean {mean}"
        );
    }

    #[test]
    fn without_ixps_strips_exactly_ixps() {
        let net = tiny();
        let (g, map) = net.without_ixps();
        assert_eq!(g.node_count(), net.as_count());
        assert!(map.iter().all(|&v| net.kind(v).is_as()));
        // Membership edges vanish, AS-AS edges survive.
        let as_edges = net
            .relationships()
            .iter()
            .filter(|r| r.2 != Relationship::IxpMembership)
            .count();
        assert_eq!(g.edge_count(), as_edges);
    }

    #[test]
    fn member_fraction_in_band() {
        let net = tiny();
        let g = net.graph();
        let mut member_as = 0usize;
        for v in g.nodes() {
            if net.kind(v).is_as() && g.neighbors(v).iter().any(|&n| net.kind(n) == NodeKind::Ixp) {
                member_as += 1;
            }
        }
        let frac = member_as as f64 / net.as_count() as f64;
        assert!(
            (0.25..=0.60).contains(&frac),
            "member fraction {frac} outside calibration band"
        );
    }

    #[test]
    fn names_reflect_kinds() {
        let net = tiny();
        for v in net.graph().nodes() {
            let name = net.name(v);
            match net.kind(v) {
                NodeKind::Tier1 => assert!(name.starts_with("Backbone")),
                NodeKind::Transit => assert!(name.starts_with("Transit")),
                NodeKind::Content => assert!(name.starts_with("Content")),
                NodeKind::Enterprise => assert!(name.starts_with("Enterprise")),
                NodeKind::Access => assert!(name.starts_with("Access")),
                NodeKind::Ixp => assert!(name.starts_with("IXP")),
            }
        }
    }

    #[test]
    fn from_parts_normalizes_reversed_edges() {
        use netgraph::graph::from_edges;
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        let net = Internet::from_parts(
            g,
            vec![NodeKind::Access, NodeKind::Transit],
            vec!["a".into(), "t".into()],
            vec![(NodeId(1), NodeId(0), Relationship::ProviderOfB)],
        );
        // Stored as (0, 1, CustomerOfB): 0 is customer of 1.
        assert_eq!(
            net.relationship(NodeId(0), NodeId(1)),
            Some(Relationship::CustomerOfB)
        );
    }

    #[test]
    #[should_panic(expected = "conflicting relationships")]
    fn from_parts_rejects_conflicting_duplicates() {
        use netgraph::graph::from_edges;
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        Internet::from_parts(
            g,
            vec![NodeKind::Access, NodeKind::Transit],
            vec!["a".into(), "t".into()],
            vec![
                (NodeId(0), NodeId(1), Relationship::CustomerOfB),
                (NodeId(0), NodeId(1), Relationship::Peer),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "relationship list")]
    fn from_parts_rejects_incomplete_rels() {
        use netgraph::graph::from_edges;
        let g = from_edges(3, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        Internet::from_parts(
            g,
            vec![NodeKind::Access; 3],
            vec!["a".into(), "b".into(), "c".into()],
            vec![(NodeId(0), NodeId(1), Relationship::Peer)],
        );
    }
}
