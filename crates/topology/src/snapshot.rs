//! Snapshot persistence: save/load an [`Internet`] as JSON.
//!
//! Experiments pin an exact topology by snapshotting it once and reloading
//! it across runs; the bench harness stores the snapshot digest next to
//! the results recorded in `EXPERIMENTS.md`.

use crate::Internet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Serialize `net` to `path` as JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_snapshot<P: AsRef<Path>>(net: &Internet, path: P) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, net).map_err(std::io::Error::other)?;
    w.flush()
}

/// Load an [`Internet`] previously written by [`save_snapshot`].
///
/// # Errors
///
/// Returns any I/O or deserialization error.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> std::io::Result<Internet> {
    let file = File::open(path)?;
    let r = BufReader::new(file);
    serde_json::from_reader(r).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};

    #[test]
    fn snapshot_roundtrip() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(5);
        let dir = std::env::temp_dir().join("topology-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        save_snapshot(&net, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(net.graph(), back.graph());
        assert_eq!(net.relationships(), back.relationships());
        assert_eq!(net.kinds(), back.kinds());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_snapshot("/nonexistent/definitely/missing.json").is_err());
    }
}
