//! Invariant audit for the Internet model ([`Validate`] impl).
//!
//! Re-derives, from the raw graph + metadata, the structural properties
//! the paper's evaluation depends on: the tier-1 clique at the top of
//! the hierarchy, acyclicity of the customer→provider ("money flows up")
//! relation, and the shape of the IXP membership layer. The underlying
//! CSR representation is audited too, so one call covers the whole
//! container.

use crate::{Internet, NodeKind, Relationship, Tier};
use netgraph::NodeId;
pub use netgraph::{debug_validate, AuditReport, Finding, Validate};

impl Validate for Internet {
    /// Audit the topology invariants:
    ///
    /// 1. the underlying graph passes the deep CSR audit;
    /// 2. metadata vectors cover every vertex;
    /// 3. every relationship `(a, b)` is an actual graph edge, exactly
    ///    one relationship per edge;
    /// 4. tier-1 ASes form a clique (full-mesh peering, Section 2);
    /// 5. the customer→provider digraph is acyclic (Gao–Rexford
    ///    hierarchy — a provider cycle would let valley-free paths
    ///    loop);
    /// 6. IXP sanity: memberships join an AS to an IXP (never IXP–IXP),
    ///    peering/transit edges never touch an IXP vertex, and when IXPs
    ///    exist the attachment fraction of ASes stays within the loose
    ///    generator tolerance `(0, 1]`.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("topology::Internet");
        let g = self.graph();
        rep.absorb(g.audit());
        let n = g.node_count();

        rep.check("meta.kinds-cover", self.kinds().len() == n, || {
            format!("{} kinds for {} vertices", self.kinds().len(), n)
        });
        rep.check("meta.names-cover", self.names().len() == n, || {
            format!("{} names for {} vertices", self.names().len(), n)
        });

        // Relationships: one per edge, each backed by a real edge.
        let rels = self.relationships();
        rep.check("rels.cover-edges", rels.len() == g.edge_count(), || {
            format!("{} relationships for {} edges", rels.len(), g.edge_count())
        });
        let phantom = rels
            .iter()
            .filter(|&&(a, b, _)| a.index() >= n || b.index() >= n || !g.has_edge(a, b))
            .count();
        rep.check("rels.edges-exist", phantom == 0, || {
            format!("{phantom} relationships reference non-edges")
        });

        // Tier-1 clique.
        let t1 = self.tier1s();
        let mut missing = 0usize;
        let mut example = String::new();
        for (i, &u) in t1.iter().enumerate() {
            for &v in &t1[i + 1..] {
                if !g.has_edge(u, v) {
                    missing += 1;
                    if example.is_empty() {
                        example = format!("{} -/- {}", self.name(u), self.name(v));
                    }
                }
            }
        }
        rep.check("tier1.clique", missing == 0, || {
            format!("{missing} missing tier-1 peerings, e.g. {example}")
        });
        rep.check("tier1.nonempty", n == 0 || !t1.is_empty(), || {
            "non-empty topology without any tier-1".into()
        });

        // Customer→provider acyclicity via Kahn's algorithm on the
        // transit digraph (edge customer -> provider).
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indeg = vec![0u32; n];
        for &(a, b, rel) in rels {
            let (c, p) = match rel {
                Relationship::CustomerOfB => (a, b),
                Relationship::ProviderOfB => (b, a),
                Relationship::Peer | Relationship::IxpMembership => continue,
            };
            if c.index() < n && p.index() < n {
                out[c.index()].push(p.0);
                indeg[p.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &p in &out[v] {
                indeg[p as usize] -= 1;
                if indeg[p as usize] == 0 {
                    queue.push(p as usize);
                }
            }
        }
        rep.check("transit.acyclic", seen == n, || {
            format!("{} vertices sit on customer->provider cycles", n - seen)
        });

        // Transit edges always point up the tier hierarchy (a tier-1 has
        // no provider by definition).
        let t1_with_provider = rels
            .iter()
            .filter(|&&(a, b, rel)| {
                let customer = match rel {
                    Relationship::CustomerOfB => a,
                    Relationship::ProviderOfB => b,
                    _ => return false,
                };
                self.tier(customer) == Tier::One
            })
            .count();
        rep.check(
            "transit.tier1-has-no-provider",
            t1_with_provider == 0,
            || format!("{t1_with_provider} tier-1 ASes buy transit"),
        );

        // IXP layer.
        let mut bad_membership = 0usize;
        let mut ixp_on_policy_edge = 0usize;
        for &(a, b, rel) in rels {
            let a_ixp = self.kind(a) == NodeKind::Ixp;
            let b_ixp = self.kind(b) == NodeKind::Ixp;
            match rel {
                Relationship::IxpMembership => {
                    if !(a_ixp ^ b_ixp) {
                        bad_membership += 1;
                    }
                }
                _ => {
                    if a_ixp || b_ixp {
                        ixp_on_policy_edge += 1;
                    }
                }
            }
        }
        rep.check("ixp.membership-shape", bad_membership == 0, || {
            format!("{bad_membership} memberships not AS<->IXP")
        });
        rep.check("ixp.no-policy-edges", ixp_on_policy_edge == 0, || {
            format!("{ixp_on_policy_edge} transit/peer edges touch an IXP vertex")
        });
        if self.ixp_count() > 0 && self.as_count() > 0 {
            let attached = (0..n)
                .filter(|&v| {
                    self.kind(NodeId(v as u32)).is_as()
                        && g.neighbors(NodeId(v as u32))
                            .iter()
                            .any(|&u| self.kind(u) == NodeKind::Ixp)
                })
                .count();
            let fraction = attached as f64 / self.as_count() as f64;
            rep.check(
                "ixp.attachment-fraction",
                fraction > 0.0 && fraction <= 1.0,
                || format!("attachment fraction {fraction} outside (0, 1]"),
            );
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};
    use netgraph::graph::from_edges;

    #[test]
    fn generated_internets_pass() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(7);
        let rep = net.audit();
        assert!(rep.is_ok(), "{rep}");
        assert!(rep.checks > 10);
    }

    #[test]
    fn provider_cycle_detected() {
        // 0 -> 1 -> 2 -> 0 transit cycle (plus the edges to back it).
        let g = from_edges(
            3,
            [(0, 1), (1, 2), (0, 2)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let kinds = vec![NodeKind::Transit; 3];
        let names = (0..3).map(|i| format!("AS{i}")).collect();
        let rels = vec![
            (NodeId(0), NodeId(1), Relationship::CustomerOfB),
            (NodeId(1), NodeId(2), Relationship::CustomerOfB),
            (NodeId(0), NodeId(2), Relationship::ProviderOfB),
        ];
        let net = Internet::from_parts(g, kinds, names, rels);
        let rep = net.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "transit.acyclic"),
            "{rep}"
        );
    }

    #[test]
    fn broken_tier1_clique_detected() {
        // Two tier-1s that do not peer with each other.
        let g = from_edges(3, [(0, 2), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let kinds = vec![NodeKind::Tier1, NodeKind::Tier1, NodeKind::Transit];
        let names = (0..3).map(|i| format!("AS{i}")).collect();
        let rels = vec![
            (NodeId(0), NodeId(2), Relationship::ProviderOfB),
            (NodeId(1), NodeId(2), Relationship::ProviderOfB),
        ];
        let net = Internet::from_parts(g, kinds, names, rels);
        let rep = net.audit();
        assert!(
            rep.findings.iter().any(|f| f.invariant == "tier1.clique"),
            "{rep}"
        );
    }

    #[test]
    fn ixp_policy_edge_detected() {
        // A "peering" with an IXP endpoint is a taxonomy violation.
        let g = from_edges(2, [(0, 1)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let kinds = vec![NodeKind::Access, NodeKind::Ixp];
        let names = vec!["AS0".into(), "IXP1".into()];
        let rels = vec![(NodeId(0), NodeId(1), Relationship::Peer)];
        let net = Internet::from_parts(g, kinds, names, rels);
        let rep = net.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "ixp.no-policy-edges"),
            "{rep}"
        );
    }
}
