//! Dataset statistics mirroring Table 2 of the paper.

use crate::taxonomy::{NodeKind, Relationship};
use crate::Internet;
use netgraph::connected_components;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of an [`Internet`] topology, one field per row of
/// the paper's Table 2 plus a few derived quantities used elsewhere in
/// the evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of IXP vertices (paper: 322).
    pub ixps: usize,
    /// Number of AS vertices (paper: 51,757).
    pub ases: usize,
    /// Size of the maximum connected subgraph (paper: 51,895).
    pub giant_component: usize,
    /// Direct AS–AS connections (paper: 347,332).
    pub as_as_edges: usize,
    /// AS–IXP membership links (paper: 55,282).
    pub as_ixp_edges: usize,
    /// Potential AS–AS peerings realizable over shared IXPs, i.e. pairs
    /// of ASes co-located at at least one exchange (paper reports
    /// 292,050 IXP-mediated connections).
    pub ixp_mediated_pairs: u64,
    /// Fraction of ASes directly attached to at least one IXP
    /// (paper: 40.2 %).
    pub frac_as_with_ixp: f64,
    /// Mean vertex degree of the combined graph.
    pub mean_degree: f64,
    /// Maximum vertex degree of the combined graph.
    pub max_degree: usize,
    /// Per-kind vertex counts, in [`NodeKind::all`] order.
    pub kind_counts: [usize; 6],
}

impl TopologyStats {
    /// Compute statistics for a topology.
    pub fn compute(net: &Internet) -> Self {
        let g = net.graph();
        let comps = connected_components(g);
        let giant = comps.giant().map_or(0, |(_, s)| s);

        let mut as_as = 0usize;
        let mut as_ixp = 0usize;
        for &(_, _, rel) in net.relationships() {
            if rel == Relationship::IxpMembership {
                as_ixp += 1;
            } else {
                as_as += 1;
            }
        }

        // Pairs of ASes sharing an IXP, deduplicated across exchanges.
        // Exact but quadratic in membership (a 5k-member exchange alone
        // contributes 12.5M raw pairs at full scale); compacting the pair
        // list whenever it grows past a bound keeps peak memory flat
        // instead of materializing all ~10^8 raw pairs at once.
        const COMPACT_AT: usize = 16_000_000;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let compact = |pairs: &mut Vec<(u32, u32)>| {
            pairs.sort_unstable();
            pairs.dedup();
        };
        for v in g.nodes() {
            if net.kind(v) == NodeKind::Ixp {
                let members = g.neighbors(v);
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        pairs.push((a.0.min(b.0), a.0.max(b.0)));
                    }
                }
                if pairs.len() > COMPACT_AT {
                    compact(&mut pairs);
                }
            }
        }
        compact(&mut pairs);
        let ixp_mediated_pairs = pairs.len() as u64;

        let mut member_as = 0usize;
        let mut ases = 0usize;
        for v in g.nodes() {
            if net.kind(v).is_as() {
                ases += 1;
                if g.neighbors(v).iter().any(|&n| net.kind(n) == NodeKind::Ixp) {
                    member_as += 1;
                }
            }
        }

        let mut kind_counts = [0usize; 6];
        for &k in net.kinds() {
            let idx = NodeKind::all().iter().position(|&x| x == k).unwrap_or(0);
            kind_counts[idx] += 1;
        }

        let max_degree = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);

        TopologyStats {
            ixps: net.ixp_count(),
            ases,
            giant_component: giant,
            as_as_edges: as_as,
            as_ixp_edges: as_ixp,
            ixp_mediated_pairs,
            frac_as_with_ixp: if ases == 0 {
                0.0
            } else {
                member_as as f64 / ases as f64
            },
            mean_degree: g.mean_degree(),
            max_degree,
            kind_counts,
        }
    }

    /// Total vertex count.
    pub fn node_count(&self) -> usize {
        self.ases + self.ixps
    }

    /// Giant component as a fraction of all vertices.
    pub fn giant_component_fraction(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.giant_component as f64 / self.node_count() as f64
        }
    }
}

impl fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IXPs:                          {}", self.ixps)?;
        writeln!(f, "ASes:                          {}", self.ases)?;
        writeln!(f, "Max connected subgraph:        {}", self.giant_component)?;
        writeln!(f, "AS-AS connections:             {}", self.as_as_edges)?;
        writeln!(f, "AS-IXP connections:            {}", self.as_ixp_edges)?;
        writeln!(
            f,
            "IXP-mediated AS pairs:         {}",
            self.ixp_mediated_pairs
        )?;
        writeln!(
            f,
            "ASes with IXP attachment:      {:.1}%",
            100.0 * self.frac_as_with_ixp
        )?;
        writeln!(f, "Mean degree:                   {:.2}", self.mean_degree)?;
        write!(f, "Max degree:                    {}", self.max_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};
    use netgraph::graph::from_edges;
    use netgraph::NodeId;

    #[test]
    fn stats_on_tiny_fixture() {
        // AS0 -peer- AS1, both members of IXP2; AS3 isolated AS.
        let g = from_edges(
            4,
            [(0, 1), (0, 2), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let net = Internet::from_parts(
            g,
            vec![
                NodeKind::Access,
                NodeKind::Access,
                NodeKind::Ixp,
                NodeKind::Access,
            ],
            (0..4).map(|i| format!("n{i}")).collect(),
            vec![
                (NodeId(0), NodeId(1), Relationship::Peer),
                (NodeId(0), NodeId(2), Relationship::IxpMembership),
                (NodeId(1), NodeId(2), Relationship::IxpMembership),
            ],
        );
        let s = net.stats();
        assert_eq!(s.ixps, 1);
        assert_eq!(s.ases, 3);
        assert_eq!(s.as_as_edges, 1);
        assert_eq!(s.as_ixp_edges, 2);
        assert_eq!(s.ixp_mediated_pairs, 1);
        assert_eq!(s.giant_component, 3);
        assert!((s.frac_as_with_ixp - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.node_count(), 4);
        assert!((s.giant_component_fraction() - 0.75).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("ASes:"));
    }

    #[test]
    fn ixp_mediated_pairs_deduped_across_exchanges() {
        // Two IXPs (2, 3) with the same two members (0, 1): one pair.
        let g = from_edges(
            4,
            [(0, 2), (1, 2), (0, 3), (1, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let net = Internet::from_parts(
            g,
            vec![
                NodeKind::Access,
                NodeKind::Access,
                NodeKind::Ixp,
                NodeKind::Ixp,
            ],
            (0..4).map(|i| format!("n{i}")).collect(),
            vec![
                (NodeId(0), NodeId(2), Relationship::IxpMembership),
                (NodeId(1), NodeId(2), Relationship::IxpMembership),
                (NodeId(0), NodeId(3), Relationship::IxpMembership),
                (NodeId(1), NodeId(3), Relationship::IxpMembership),
            ],
        );
        assert_eq!(net.stats().ixp_mediated_pairs, 1);
    }

    #[test]
    fn generated_tiny_stats_consistent() {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        let net = cfg.generate(11);
        let s = net.stats();
        assert_eq!(s.ases + s.ixps, cfg.node_count());
        assert_eq!(s.as_as_edges + s.as_ixp_edges, net.graph().edge_count());
        assert!(s.mean_degree > 2.0);
        assert!(s.max_degree > 20);
        assert_eq!(s.kind_counts.iter().sum::<usize>(), cfg.node_count());
    }
}
