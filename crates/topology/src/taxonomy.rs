//! Node kinds, tiers and inter-AS business relationships.
//!
//! The paper divides brokers into service categories (Table 5: IXP, "T/A"
//! transit/access providers, "C" content, "E" enterprise) and its economic
//! analysis distinguishes high-tier from low-tier ISPs. Business
//! relationships follow the standard Gao–Rexford model: customer→provider,
//! peer–peer, plus IXP membership for the AS–IXP attachment links.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a vertex of the combined AS/IXP topology is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Tier-1 backbone ISP (settlement-free peer of the other tier-1s).
    Tier1,
    /// Transit/access provider below tier-1 ("T/A" in Table 5).
    Transit,
    /// Stub access network (eyeball ISP, campus, regional).
    Access,
    /// Content provider / CDN ("C" in Table 5).
    Content,
    /// Enterprise network ("E" in Table 5).
    Enterprise,
    /// Internet eXchange Point, modeled as an independent vertex.
    Ixp,
}

impl NodeKind {
    /// Whether the node is an AS (everything except an IXP).
    pub fn is_as(self) -> bool {
        self != NodeKind::Ixp
    }

    /// The Table 5 category label for this kind.
    pub fn category_label(self) -> &'static str {
        match self {
            NodeKind::Tier1 | NodeKind::Transit | NodeKind::Access => "T/A",
            NodeKind::Content => "C",
            NodeKind::Enterprise => "E",
            NodeKind::Ixp => "IXP",
        }
    }

    /// All kinds, in declaration order (useful for composition histograms).
    pub fn all() -> [NodeKind; 6] {
        [
            NodeKind::Tier1,
            NodeKind::Transit,
            NodeKind::Access,
            NodeKind::Content,
            NodeKind::Enterprise,
            NodeKind::Ixp,
        ]
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Tier1 => "tier1",
            NodeKind::Transit => "transit",
            NodeKind::Access => "access",
            NodeKind::Content => "content",
            NodeKind::Enterprise => "enterprise",
            NodeKind::Ixp => "ixp",
        };
        f.write_str(s)
    }
}

/// Coarse position in the provider hierarchy, used by the economic model
/// (high-tier ASes charge, low-tier ASes pay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Settlement-free core.
    One,
    /// Mid-tier transit.
    Two,
    /// Stub / edge networks.
    Three,
}

impl Tier {
    /// Tier of a node kind (IXPs are placed in the core tier: they carry
    /// but neither buy nor sell transit).
    pub fn of(kind: NodeKind) -> Tier {
        match kind {
            NodeKind::Tier1 | NodeKind::Ixp => Tier::One,
            NodeKind::Transit => Tier::Two,
            NodeKind::Access | NodeKind::Content | NodeKind::Enterprise => Tier::Three,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::One => "tier-1",
            Tier::Two => "tier-2",
            Tier::Three => "tier-3",
        };
        f.write_str(s)
    }
}

/// Business relationship attached to an undirected topology edge `(a, b)`.
///
/// Directions are stated relative to the stored edge endpoints: the edge
/// list in [`crate::Internet`] stores `(a, b, rel)` and
/// `CustomerOfB` means *`a` is the customer of `b`*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` buys transit from `b` (customer→provider).
    CustomerOfB,
    /// `b` buys transit from `a` (provider→customer, i.e. `b` is customer).
    ProviderOfB,
    /// Settlement-free peering.
    Peer,
    /// AS–IXP membership (either endpoint may be the IXP).
    IxpMembership,
}

impl Relationship {
    /// The same relationship seen from the opposite endpoint order.
    pub fn reversed(self) -> Relationship {
        match self {
            Relationship::CustomerOfB => Relationship::ProviderOfB,
            Relationship::ProviderOfB => Relationship::CustomerOfB,
            other => other,
        }
    }

    /// Whether traffic may flow both ways free of transit charges
    /// (peering or IXP fabric).
    pub fn is_symmetric(self) -> bool {
        matches!(self, Relationship::Peer | Relationship::IxpMembership)
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relationship::CustomerOfB => "c2p",
            Relationship::ProviderOfB => "p2c",
            Relationship::Peer => "p2p",
            Relationship::IxpMembership => "ixp",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_labels_match_table5() {
        assert_eq!(NodeKind::Tier1.category_label(), "T/A");
        assert_eq!(NodeKind::Transit.category_label(), "T/A");
        assert_eq!(NodeKind::Access.category_label(), "T/A");
        assert_eq!(NodeKind::Content.category_label(), "C");
        assert_eq!(NodeKind::Enterprise.category_label(), "E");
        assert_eq!(NodeKind::Ixp.category_label(), "IXP");
    }

    #[test]
    fn ixp_is_not_an_as() {
        assert!(!NodeKind::Ixp.is_as());
        assert!(NodeKind::Content.is_as());
        assert_eq!(NodeKind::all().len(), 6);
    }

    #[test]
    fn tiers() {
        assert_eq!(Tier::of(NodeKind::Tier1), Tier::One);
        assert_eq!(Tier::of(NodeKind::Transit), Tier::Two);
        assert_eq!(Tier::of(NodeKind::Enterprise), Tier::Three);
        assert!(Tier::One < Tier::Three);
    }

    #[test]
    fn relationship_reversal_is_involutive() {
        for r in [
            Relationship::CustomerOfB,
            Relationship::ProviderOfB,
            Relationship::Peer,
            Relationship::IxpMembership,
        ] {
            assert_eq!(r.reversed().reversed(), r);
        }
        assert_eq!(
            Relationship::CustomerOfB.reversed(),
            Relationship::ProviderOfB
        );
        assert!(Relationship::Peer.is_symmetric());
        assert!(!Relationship::CustomerOfB.is_symmetric());
    }

    #[test]
    fn display_strings() {
        assert_eq!(NodeKind::Ixp.to_string(), "ixp");
        assert_eq!(Tier::Two.to_string(), "tier-2");
        assert_eq!(Relationship::Peer.to_string(), "p2p");
    }
}
