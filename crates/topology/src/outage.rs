//! Correlated-outage group builders for fault schedules.
//!
//! The fault layer ([`netgraph::FaultSchedule`]) takes opaque
//! [`netgraph::FaultGroup`]s; this module builds the two kinds of
//! correlated failure the topology model can express:
//!
//! - **IXP outage** — the exchange vertex goes dark and every membership
//!   edge it anchors is cut with it (a power/peering-LAN failure takes
//!   the fabric down, not just the switch's AS number);
//! - **regional outage** — every vertex a [`GeoModel`] places in one
//!   [`Region`] fails together (a cable cut or grid failure).
//!
//! Groups are pure data: register them with
//! [`netgraph::FaultSchedule::add_group`] and schedule fail/recover
//! events against the returned index.

use crate::geo::{GeoModel, Region};
use crate::internet::Internet;
use netgraph::{FaultGroup, NodeId};

/// The correlated outage of one IXP: its vertex plus every membership
/// edge incident to it.
///
/// Listing the edges is technically redundant while the vertex is down
/// (masking the vertex already hides them) but makes the group
/// meaningful under partial recovery scenarios that restore the vertex
/// before its fabric.
pub fn ixp_outage_group(net: &Internet, ixp: NodeId) -> FaultGroup {
    let g = net.graph();
    let edges: Vec<(NodeId, NodeId)> = g.neighbors(ixp).iter().map(|&m| (ixp, m)).collect();
    FaultGroup::new(format!("ixp-{}", net.name(ixp)), vec![ixp], edges)
}

/// The correlated outage of every vertex `geo` assigns to `region`.
pub fn region_outage_group(net: &Internet, geo: &GeoModel, region: Region) -> FaultGroup {
    let members: Vec<NodeId> = net
        .graph()
        .nodes()
        .filter(|&v| geo.region(v) == region)
        .collect();
    FaultGroup::new(format!("region-{region:?}"), members, [])
}

/// The highest-degree IXP vertex (ties broken toward the smaller id),
/// or `None` if the topology has no IXPs.
///
/// Degree of an IXP vertex = number of member ASes, so this is the
/// exchange whose outage severs the most memberships at once.
pub fn largest_ixp(net: &Internet) -> Option<NodeId> {
    let g = net.graph();
    net.ixps()
        .iter()
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::{InternetConfig, Scale};
    use netgraph::undirected_key;

    fn tiny() -> Internet {
        InternetConfig::scaled(Scale::Tiny).generate(88)
    }

    #[test]
    fn ixp_group_covers_every_membership_edge() {
        let net = tiny();
        let ixp = largest_ixp(&net).unwrap();
        let group = ixp_outage_group(&net, ixp);
        assert_eq!(group.nodes, vec![ixp]);
        assert_eq!(group.edges.len(), net.graph().degree(ixp));
        for &(a, b) in &group.edges {
            assert!(a <= b, "edge keys must be normalized");
            assert_eq!(undirected_key(NodeId(a), NodeId(b)), (a, b));
        }
        assert!(group.name.starts_with("ixp-"));
    }

    #[test]
    fn largest_ixp_maximizes_degree() {
        let net = tiny();
        let best = largest_ixp(&net).unwrap();
        let g = net.graph();
        for v in net.ixps().iter() {
            assert!(g.degree(v) <= g.degree(best));
            if g.degree(v) == g.degree(best) {
                assert!(best <= v, "ties must break toward the smaller id");
            }
        }
    }

    #[test]
    fn region_groups_partition_the_vertices() {
        let net = tiny();
        let geo = GeoModel::assign(&net, 0.9, 7);
        let total: usize = Region::all()
            .iter()
            .map(|&r| region_outage_group(&net, &geo, r).nodes.len())
            .sum();
        assert_eq!(total, net.graph().node_count());
    }
}
