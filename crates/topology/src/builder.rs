//! Fluent builder for hand-crafted topologies.
//!
//! The generator covers the evaluation; tests, examples and docs often
//! want a five-node fixture instead. `TopologyBuilder` assembles an
//! [`Internet`] edge by edge with the relationship bookkeeping done for
//! you.
//!
//! ```
//! use topology::builder::TopologyBuilder;
//! use topology::NodeKind;
//!
//! let mut b = TopologyBuilder::new();
//! let t1 = b.add("Backbone", NodeKind::Tier1);
//! let isp = b.add("RegionalISP", NodeKind::Transit);
//! let stub = b.add("Campus", NodeKind::Access);
//! let ix = b.add("IX", NodeKind::Ixp);
//! b.customer_provider(isp, t1);
//! b.customer_provider(stub, isp);
//! b.member(isp, ix);
//! let net = b.build();
//! assert_eq!(net.as_count(), 3);
//! assert_eq!(net.graph().edge_count(), 3);
//! ```

use crate::taxonomy::{NodeKind, Relationship};
use crate::Internet;
use netgraph::{GraphBuilder, NodeId};

/// Incremental [`Internet`] builder for fixtures and small scenarios.
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    rels: Vec<(NodeId, NodeId, Relationship)>,
}

impl TopologyBuilder {
    /// Start empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex; returns its id.
    pub fn add(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId::from(self.kinds.len());
        self.kinds.push(kind);
        self.names.push(name.into());
        id
    }

    /// `customer` buys transit from `provider`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is an IXP (IXPs only take memberships).
    pub fn customer_provider(&mut self, customer: NodeId, provider: NodeId) -> &mut Self {
        assert!(
            self.kinds[customer.index()].is_as() && self.kinds[provider.index()].is_as(),
            "transit relationships connect ASes"
        );
        self.rels
            .push((customer, provider, Relationship::CustomerOfB));
        self
    }

    /// Settlement-free peering between two ASes.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is an IXP.
    pub fn peer(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        assert!(
            self.kinds[a.index()].is_as() && self.kinds[b.index()].is_as(),
            "peering connects ASes"
        );
        self.rels.push((a, b, Relationship::Peer));
        self
    }

    /// AS `member` joins exchange `ixp`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one endpoint is an IXP.
    pub fn member(&mut self, member: NodeId, ixp: NodeId) -> &mut Self {
        assert!(
            self.kinds[member.index()].is_as() && self.kinds[ixp.index()] == NodeKind::Ixp,
            "membership links an AS to an IXP"
        );
        self.rels.push((member, ixp, Relationship::IxpMembership));
        self
    }

    /// Number of vertices added so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no vertex was added yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Finalize into an [`Internet`].
    pub fn build(self) -> Internet {
        let mut gb = GraphBuilder::new(self.kinds.len());
        for &(a, b, _) in &self.rels {
            gb.add_edge(a, b);
        }
        Internet::from_parts(gb.build(), self.kinds, self.names, self.rels)
    }
}

impl crate::validate::Validate for TopologyBuilder {
    /// Re-derive the builder's insert-time contract:
    ///
    /// 1. per-vertex arrays (kinds, names) are index-aligned;
    /// 2. every relationship references vertices added so far;
    /// 3. each relationship respects the taxonomy — transit and peering
    ///    connect ASes, memberships link exactly one AS to one IXP.
    fn audit(&self) -> crate::validate::AuditReport {
        let mut rep = crate::validate::AuditReport::new("topology::TopologyBuilder");
        let n = self.kinds.len();
        rep.check("builder.arrays-aligned", self.names.len() == n, || {
            format!("{n} kinds, {} names", self.names.len())
        });
        let out_of_range = self
            .rels
            .iter()
            .filter(|&&(a, b, _)| a.index() >= n || b.index() >= n)
            .count();
        rep.check("builder.rels-in-range", out_of_range == 0, || {
            format!("{out_of_range} relationship(s) reference unknown vertices")
        });
        if out_of_range > 0 {
            return rep;
        }
        let taxonomy_ok = self.rels.iter().all(|&(a, b, rel)| {
            let (ka, kb) = (self.kinds[a.index()], self.kinds[b.index()]);
            match rel {
                Relationship::CustomerOfB | Relationship::ProviderOfB | Relationship::Peer => {
                    ka.is_as() && kb.is_as()
                }
                // This builder's `member` always orders (AS, IXP).
                Relationship::IxpMembership => ka.is_as() && kb == NodeKind::Ixp,
            }
        });
        rep.check("builder.taxonomy-respected", taxonomy_ok, || {
            "a relationship violates the AS/IXP taxonomy".into()
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_relationships() {
        let mut b = TopologyBuilder::new();
        let p = b.add("P", NodeKind::Transit);
        let c = b.add("C", NodeKind::Access);
        let x = b.add("X", NodeKind::Ixp);
        assert!(!b.is_empty() && b.len() == 3);
        b.customer_provider(c, p).member(p, x);
        let net = b.build();
        assert_eq!(net.relationship(c, p), Some(Relationship::CustomerOfB));
        assert_eq!(net.relationship(p, c), Some(Relationship::ProviderOfB));
        assert_eq!(net.relationship(p, x), Some(Relationship::IxpMembership));
        assert_eq!(net.name(p), "P");
    }

    #[test]
    fn audit_accepts_and_detects_corruption() {
        use crate::validate::Validate;
        let mut b = TopologyBuilder::new();
        let p = b.add("P", NodeKind::Transit);
        let c = b.add("C", NodeKind::Access);
        let x = b.add("X", NodeKind::Ixp);
        b.customer_provider(c, p).member(p, x);
        assert!(b.audit().is_ok());
        assert!(TopologyBuilder::new().audit().is_ok());

        // Misaligned per-vertex arrays.
        let mut bad = b.clone();
        bad.names.pop();
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "builder.arrays-aligned"));

        // A relationship referencing a vertex never added.
        let mut bad = b.clone();
        bad.rels.push((NodeId(0), NodeId(9), Relationship::Peer));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "builder.rels-in-range"));

        // Taxonomy violations injected past the asserting methods:
        // peering with an IXP, and a membership between two ASes.
        let mut bad = b.clone();
        bad.rels.push((p, x, Relationship::Peer));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "builder.taxonomy-respected"));
        let mut bad = b;
        bad.rels.push((p, c, Relationship::IxpMembership));
        assert!(!bad.audit().is_ok());
    }

    #[test]
    #[should_panic(expected = "membership")]
    fn member_requires_ixp() {
        let mut b = TopologyBuilder::new();
        let a = b.add("A", NodeKind::Access);
        let c = b.add("B", NodeKind::Access);
        b.member(a, c);
    }

    #[test]
    #[should_panic(expected = "ASes")]
    fn peering_rejects_ixp() {
        let mut b = TopologyBuilder::new();
        let a = b.add("A", NodeKind::Access);
        let x = b.add("X", NodeKind::Ixp);
        b.peer(a, x);
    }
}
