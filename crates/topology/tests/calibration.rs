//! Calibration regression tests: the quarter-scale topology must keep
//! reproducing the paper's aggregate statistics and coverage profile.
//! These are the guardrails for anyone touching the generator constants.

use topology::{InternetConfig, Scale};

#[test]
fn quarter_scale_table2_bands() {
    let cfg = InternetConfig::scaled(Scale::Quarter);
    let net = cfg.generate(2014);
    let s = net.stats();

    // Absolute counts match the config targets.
    assert_eq!(s.ixps, 80);
    assert_eq!(s.ases, 12_940);
    assert!(
        (s.as_as_edges as f64) > 0.97 * cfg.target_as_edges as f64,
        "AS-AS edges {} below target band",
        s.as_as_edges
    );
    assert!(
        (s.as_ixp_edges as f64) > 0.9 * cfg.target_memberships as f64,
        "memberships {} below target band",
        s.as_ixp_edges
    );

    // Ratios from the paper: 40.2% IXP attachment, ~99.65% giant share.
    assert!(
        (0.36..=0.45).contains(&s.frac_as_with_ixp),
        "IXP attachment {} outside band",
        s.frac_as_with_ixp
    );
    let giant_frac = s.giant_component_fraction();
    assert!(
        (0.99..1.0).contains(&giant_frac),
        "giant fraction {giant_frac} outside band"
    );
}

#[test]
fn quarter_scale_alpha_beta_graph() {
    // The (0.99, 4)-graph property of Definition 2.
    let net = InternetConfig::scaled(Scale::Quarter).generate(2014);
    let mut rng = {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(99)
    };
    let est = netgraph::estimate_alpha(net.graph(), 0.985, 4, 120, &mut rng);
    assert!(
        est.satisfied,
        "alpha at beta=4 is {:.4} (need >= 0.985)",
        est.alpha
    );
}

#[test]
fn quarter_scale_coverage_profile() {
    // The Table-1 shape: saturated connectivity at the paper's broker
    // budgets (bands allow generator drift of a few points).
    let net = InternetConfig::scaled(Scale::Quarter).generate(2014);
    let g = net.graph();
    let n = g.node_count();
    let run = brokerset::max_subgraph_greedy(g, (n as f64 * 0.068).round() as usize);

    let sat = |frac: f64| {
        let k = ((n as f64 * frac).round() as usize).max(1);
        brokerset::saturated_connectivity(g, run.truncated(k).brokers()).fraction
    };
    let at_019 = sat(0.0019);
    let at_19 = sat(0.019);
    let at_68 = sat(0.068);
    assert!(
        (0.40..=0.65).contains(&at_019),
        "0.19% budget: {at_019} (paper 0.5314)"
    );
    assert!(
        (0.80..=0.95).contains(&at_19),
        "1.9% budget: {at_19} (paper 0.8541)"
    );
    assert!(
        (0.98..=1.0).contains(&at_68),
        "6.8% budget: {at_68} (paper 0.9929)"
    );

    // IXPB baseline band (paper: 15.70%).
    let ixpb = brokerset::ixp_based(&net, 0);
    let ixp_sat = brokerset::saturated_connectivity(g, ixpb.brokers()).fraction;
    assert!(
        (0.10..=0.25).contains(&ixp_sat),
        "IXPB: {ixp_sat} (paper 0.157)"
    );
}

#[test]
fn quarter_scale_degree_tail_scale_free() {
    let net = InternetConfig::scaled(Scale::Quarter).generate(2014);
    let stats = netgraph::degree_stats(net.graph(), 0.02);
    let alpha = stats.tail_exponent.expect("tail long enough");
    assert!(
        (0.8..=3.5).contains(&alpha),
        "degree tail exponent {alpha} not heavy-tailed"
    );
    assert!(stats.max > 500, "hub degree {} too small", stats.max);
}
