//! Micro-benchmarks of the hot kernels: BFS (pooled vs allocating),
//! the 64-lane msbfs batch vs 64 per-source runs, dominated components,
//! coverage gain, and the l-hop connectivity evaluator (sequential vs
//! parallel).

use brokerset::{greedy_mcb, lhop_curve, saturated_connectivity, CoverageState, SourceMode};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netgraph::{with_arena, DominatedView, FullView, MsBfsArena, NodeId, TraversalArena};
use topology::{InternetConfig, Scale};

fn kernels(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let n = g.node_count();
    let sel = greedy_mcb(&g, n / 15);

    // Steady-state engine cost: the arena is reused across runs, so the
    // only per-run work is the epoch bump and the wavefront itself.
    c.bench_function("bfs_arena_reused", |b| {
        let mut arena = TraversalArena::with_capacity(n);
        b.iter(|| arena.run(FullView::new(&g), NodeId(0)))
    });

    // Same traversal but paying the full allocation cost every run —
    // the baseline the pooled arena is meant to beat.
    c.bench_function("bfs_arena_fresh", |b| {
        b.iter(|| {
            let mut arena = TraversalArena::new();
            arena.run(FullView::new(&g), NodeId(0))
        })
    });

    // Thread-local pool path used by the library call sites.
    c.bench_function("bfs_arena_pooled_tls", |b| {
        b.iter(|| with_arena(|arena| arena.run(FullView::new(&g), NodeId(0))))
    });

    c.bench_function("dominated_components", |b| {
        b.iter(|| saturated_connectivity(&g, sel.brokers()))
    });

    c.bench_function("coverage_gain_scan", |b| {
        let mut cov = CoverageState::new(&g);
        for &v in sel.order().iter().take(10) {
            cov.add(&g, v);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in g.nodes() {
                acc += cov.gain(&g, v);
            }
            acc
        })
    });

    c.bench_function("lhop_curve_sampled_100", |b| {
        b.iter(|| {
            lhop_curve(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
            )
        })
    });

    c.bench_function("lhop_curve_parallel_4", |b| {
        b.iter(|| {
            brokerset::lhop_curve_parallel(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
                4,
            )
        })
    });

    c.bench_function("topology_generate_tiny", |b| {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        b.iter_batched(
            || cfg.clone(),
            |cfg| cfg.generate(99),
            BatchSize::SmallInput,
        )
    });
}

/// One 64-source batch, bit-parallel vs 64 per-source arena runs, over
/// the dominated view the l-hop evaluator uses — the lane-level speedup
/// the msbfs kernel exists for, at tiny and quarter scale.
fn msbfs_64lane(c: &mut Criterion) {
    for (name, scale) in [("tiny", Scale::Tiny), ("quarter", Scale::Quarter)] {
        let net = InternetConfig::scaled(scale).generate(2014);
        let g = net.graph().clone();
        let n = g.node_count();
        let sel = greedy_mcb(&g, n / 15);
        let sources: Vec<NodeId> = g.nodes().take(64).collect();

        let group_name = format!("msbfs_64lane_{name}");
        let mut group = c.benchmark_group(group_name.as_str());
        group.sample_size(10);
        group.bench_function("msbfs_batch", |b| {
            let mut arena = MsBfsArena::with_capacity(n);
            b.iter(|| {
                let mut pairs = 0u64;
                arena.run(
                    DominatedView::new(&g, sel.brokers()),
                    &sources,
                    u32::MAX,
                    |wf| pairs += wf.new_pairs(),
                );
                pairs
            })
        });
        group.bench_function("per_source_64", |b| {
            let mut arena = TraversalArena::with_capacity(n);
            b.iter(|| {
                let mut pairs = 0u64;
                for &s in &sources {
                    pairs += arena.run(DominatedView::new(&g, sel.brokers()), s) as u64;
                }
                pairs
            })
        });
        group.finish();
    }
}

/// Exact l-hop evaluation over every source, sequential vs parallel —
/// the fan-out the deterministic executor exists for.
fn lhop_exact(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let sel = greedy_mcb(&g, g.node_count() / 15);

    let mut group = c.benchmark_group("lhop_exact");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| brokerset::lhop_curve_parallel(&g, sel.brokers(), 6, SourceMode::Exact, 1))
    });
    group.bench_function("par", |b| {
        b.iter(|| brokerset::lhop_curve_parallel(&g, sel.brokers(), 6, SourceMode::Exact, 0))
    });
    group.finish();
}

criterion_group!(benches, kernels, msbfs_64lane, lhop_exact);
criterion_main!(benches);
