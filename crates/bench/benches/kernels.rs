//! Micro-benchmarks of the hot kernels: BFS, dominated components,
//! coverage gain, and the l-hop connectivity evaluator.

use brokerset::{greedy_mcb, lhop_curve, saturated_connectivity, CoverageState, SourceMode};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netgraph::{Bfs, NodeId};
use topology::{InternetConfig, Scale};

fn kernels(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let n = g.node_count();
    let sel = greedy_mcb(&g, n / 15);

    c.bench_function("bfs_full_graph", |b| {
        let mut bfs = Bfs::new(n);
        b.iter(|| bfs.run(&g, NodeId(0)))
    });

    c.bench_function("dominated_components", |b| {
        b.iter(|| saturated_connectivity(&g, sel.brokers()))
    });

    c.bench_function("coverage_gain_scan", |b| {
        let mut cov = CoverageState::new(&g);
        for &v in sel.order().iter().take(10) {
            cov.add(&g, v);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in g.nodes() {
                acc += cov.gain(&g, v);
            }
            acc
        })
    });

    c.bench_function("lhop_curve_sampled_100", |b| {
        b.iter(|| {
            lhop_curve(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
            )
        })
    });

    c.bench_function("lhop_curve_parallel_4", |b| {
        b.iter(|| {
            brokerset::lhop_curve_parallel(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
                4,
            )
        })
    });

    c.bench_function("topology_generate_tiny", |b| {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        b.iter_batched(
            || cfg.clone(),
            |cfg| cfg.generate(99),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, kernels);
criterion_main!(benches);
