//! Micro-benchmarks of the hot kernels: BFS (pooled vs allocating),
//! dominated components, coverage gain, and the l-hop connectivity
//! evaluator (sequential vs parallel).

use brokerset::{greedy_mcb, lhop_curve, saturated_connectivity, CoverageState, SourceMode};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netgraph::{with_arena, FullView, NodeId, TraversalArena};
use topology::{InternetConfig, Scale};

fn kernels(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let n = g.node_count();
    let sel = greedy_mcb(&g, n / 15);

    // Steady-state engine cost: the arena is reused across runs, so the
    // only per-run work is the epoch bump and the wavefront itself.
    c.bench_function("bfs_arena_reused", |b| {
        let mut arena = TraversalArena::with_capacity(n);
        b.iter(|| arena.run(FullView::new(&g), NodeId(0)))
    });

    // Same traversal but paying the full allocation cost every run —
    // the baseline the pooled arena is meant to beat.
    c.bench_function("bfs_arena_fresh", |b| {
        b.iter(|| {
            let mut arena = TraversalArena::new();
            arena.run(FullView::new(&g), NodeId(0))
        })
    });

    // Thread-local pool path used by the library call sites.
    c.bench_function("bfs_arena_pooled_tls", |b| {
        b.iter(|| with_arena(|arena| arena.run(FullView::new(&g), NodeId(0))))
    });

    c.bench_function("dominated_components", |b| {
        b.iter(|| saturated_connectivity(&g, sel.brokers()))
    });

    c.bench_function("coverage_gain_scan", |b| {
        let mut cov = CoverageState::new(&g);
        for &v in sel.order().iter().take(10) {
            cov.add(&g, v);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in g.nodes() {
                acc += cov.gain(&g, v);
            }
            acc
        })
    });

    c.bench_function("lhop_curve_sampled_100", |b| {
        b.iter(|| {
            lhop_curve(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
            )
        })
    });

    c.bench_function("lhop_curve_parallel_4", |b| {
        b.iter(|| {
            brokerset::lhop_curve_parallel(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 100,
                    seed: 7,
                },
                4,
            )
        })
    });

    c.bench_function("topology_generate_tiny", |b| {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        b.iter_batched(
            || cfg.clone(),
            |cfg| cfg.generate(99),
            BatchSize::SmallInput,
        )
    });
}

/// Exact l-hop evaluation over every source, sequential vs parallel —
/// the fan-out the deterministic executor exists for.
fn lhop_exact(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let sel = greedy_mcb(&g, g.node_count() / 15);

    let mut group = c.benchmark_group("lhop_exact");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| brokerset::lhop_curve_parallel(&g, sel.brokers(), 6, SourceMode::Exact, 1))
    });
    group.bench_function("par", |b| {
        b.iter(|| brokerset::lhop_curve_parallel(&g, sel.brokers(), 6, SourceMode::Exact, 0))
    });
    group.finish();
}

criterion_group!(benches, kernels, lhop_exact);
criterion_main!(benches);
