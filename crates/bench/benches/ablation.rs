//! Ablations of the design choices called out in DESIGN.md:
//!
//! - lazy vs naive greedy evaluation (same output, different cost);
//! - Algorithm 2 root selection: all roots vs a sampled subset;
//! - exact vs sampled l-hop connectivity.

use brokerset::{approx_mcbg, greedy_mcb, greedy_mcb_naive, lhop_curve, ApproxConfig, SourceMode};
use criterion::{criterion_group, criterion_main, Criterion};
use netgraph::NodeSet;
use topology::{InternetConfig, Scale};

fn ablation(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let n = g.node_count();
    let k = n / 15;

    let mut group = c.benchmark_group("ablation");
    group.sample_size(15);

    group.bench_function("greedy_lazy", |b| b.iter(|| greedy_mcb(&g, k)));
    group.bench_function("greedy_naive", |b| b.iter(|| greedy_mcb_naive(&g, k)));

    group.bench_function("approx_all_roots", |b| {
        b.iter(|| approx_mcbg(&g, k, &ApproxConfig::paper()))
    });
    group.bench_function("approx_sampled_roots_4", |b| {
        let cfg = ApproxConfig {
            root_sample: Some(4),
            seed: 1,
            ..ApproxConfig::paper()
        };
        b.iter(|| approx_mcbg(&g, k, &cfg))
    });
    group.bench_function("approx_strict_no_reinvest", |b| {
        b.iter(|| approx_mcbg(&g, k, &ApproxConfig::strict()))
    });

    let sel = greedy_mcb(&g, k);
    group.bench_function("lhop_exact", |b| {
        b.iter(|| lhop_curve(&g, sel.brokers(), 6, SourceMode::Exact))
    });
    group.bench_function("lhop_sampled_200", |b| {
        b.iter(|| {
            lhop_curve(
                &g,
                sel.brokers(),
                6,
                SourceMode::Sampled {
                    count: 200,
                    seed: 3,
                },
            )
        })
    });

    // Free-path curve for reference (B = V touches every edge).
    group.bench_function("lhop_free_path_sampled_200", |b| {
        let full = NodeSet::full(n);
        b.iter(|| {
            lhop_curve(
                &g,
                &full,
                6,
                SourceMode::Sampled {
                    count: 200,
                    seed: 3,
                },
            )
        })
    });

    // Prefix connectivity: one incremental sweep vs per-prefix
    // recomputation (the Fig 2b/Fig 3 inner loop).
    let maxsg = brokerset::max_subgraph_greedy(&g, k);
    group.bench_function("prefix_sweep_incremental", |b| {
        b.iter(|| brokerset::connectivity_sweep(&g, &maxsg))
    });
    group.bench_function("local_search_after_greedy", |b| {
        let sel = greedy_mcb(&g, k);
        b.iter(|| brokerset::local_search_coverage(&g, &sel, 10))
    });
    group.bench_function("prefix_sweep_recompute", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for i in (10..=maxsg.len()).step_by(10) {
                last = brokerset::saturated_connectivity(&g, maxsg.truncated(i).brokers()).fraction;
            }
            last
        })
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
