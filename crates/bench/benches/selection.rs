//! Selection-algorithm benchmarks: the paper's complexity claims.
//!
//! Algorithm 1 (lazy greedy) and Algorithm 3 (MaxSG) are both effectively
//! `O(k(|V| + |E|))`; Algorithm 2 adds per-root BFS trees. Baselines for
//! reference.

use brokerset::{
    approx_mcbg, degree_based, greedy_mcb, max_subgraph_greedy, pagerank_based, set_cover,
    ApproxConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topology::{InternetConfig, Scale};

fn selection(c: &mut Criterion) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let g = net.graph().clone();
    let k = g.node_count() / 15;

    let mut group = c.benchmark_group("selection");
    group.sample_size(20);

    group.bench_function("greedy_mcb_lazy", |b| b.iter(|| greedy_mcb(&g, k)));
    group.bench_function("maxsg", |b| b.iter(|| max_subgraph_greedy(&g, k)));
    group.bench_function("approx_mcbg_beta4", |b| {
        b.iter(|| approx_mcbg(&g, k, &ApproxConfig::paper()))
    });
    group.bench_function("degree_based", |b| b.iter(|| degree_based(&g, k)));
    group.bench_function("pagerank_based", |b| b.iter(|| pagerank_based(&g, k)));
    group.bench_function("set_cover", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| set_cover(&g, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, selection);
criterion_main!(benches);
