//! Smoke tests: every table/figure/extension binary runs to completion
//! at tiny scale and prints its headline sections.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

macro_rules! smoke {
    ($name:ident, $binenv:expr, $needle:expr) => {
        #[test]
        fn $name() {
            let text = run($binenv, &["tiny", "7"]);
            assert!(
                text.contains($needle),
                "{} output missing '{}':\n{}",
                $binenv,
                $needle,
                text
            );
        }
    };
}

smoke!(
    table1_runs,
    env!("CARGO_BIN_EXE_table1"),
    "alliance size vs coverage"
);
smoke!(
    table2_runs,
    env!("CARGO_BIN_EXE_table2"),
    "summary of the collected dataset"
);
smoke!(table3_runs, env!("CARGO_BIN_EXE_table3"), "ASes with IXPs");
smoke!(table4_runs, env!("CARGO_BIN_EXE_table4"), "path inflation");
smoke!(table5_runs, env!("CARGO_BIN_EXE_table5"), "rank");
smoke!(fig1_runs, env!("CARGO_BIN_EXE_fig1"), "scale-free");
smoke!(fig3_runs, env!("CARGO_BIN_EXE_fig3"), "corr(PR, gain)");
smoke!(fig4_runs, env!("CARGO_BIN_EXE_fig4"), "core (p99+)");
smoke!(
    fig5a_runs,
    env!("CARGO_BIN_EXE_fig5a"),
    "composition of the"
);
smoke!(
    econ_runs,
    env!("CARGO_BIN_EXE_econ"),
    "Stackelberg equilibrium"
);
smoke!(
    ext_bgp_runs,
    env!("CARGO_BIN_EXE_ext_bgp"),
    "default paths dominated"
);
smoke!(
    ext_resilience_runs,
    env!("CARGO_BIN_EXE_ext_resilience"),
    "targeted"
);
smoke!(
    ext_sla_runs,
    env!("CARGO_BIN_EXE_ext_sla"),
    "violation rate supervised"
);
smoke!(
    ext_bandwidth_runs,
    env!("CARGO_BIN_EXE_ext_bandwidth"),
    "per-demand"
);
smoke!(
    ext_econ_runs,
    env!("CARGO_BIN_EXE_ext_econ"),
    "profit x cov"
);
smoke!(
    ext_evolution_runs,
    env!("CARGO_BIN_EXE_ext_evolution"),
    "jaccard"
);

#[test]
fn fig2a_runs_with_reduced_iterations() {
    let text = run(env!("CARGO_BIN_EXE_fig2a"), &["tiny", "7", "20"]);
    assert!(text.contains("mean SC size"), "{text}");
}

#[test]
fn fig2b_runs() {
    let text = run(env!("CARGO_BIN_EXE_fig2b"), &["tiny", "7"]);
    assert!(text.contains("Panel 1"), "{text}");
    assert!(text.contains("ASesWithIXPs"), "{text}");
}

#[test]
fn fig5bc_runs() {
    let text = run(env!("CARGO_BIN_EXE_fig5bc"), &["tiny", "7"]);
    assert!(text.contains("bidirectional"), "{text}");
}

#[test]
fn calibrate_runs() {
    let text = run(env!("CARGO_BIN_EXE_calibrate"), &["tiny", "7"]);
    assert!(text.contains("greedy MCB"), "{text}");
}
