//! Smoke tests: every table/figure/extension binary runs to completion
//! at tiny scale and prints its headline sections. The golden-snapshot
//! tests at the bottom go further: `table3` and `fig2a` at tiny scale /
//! fixed seed must reproduce the checked-in records under
//! `tests/goldens/` number for number (floats at relative 1e-9), so an
//! accidental semantic change to the evaluators fails loudly instead of
//! silently shifting results. Regenerate after an *intentional* change
//! with `UPDATE_GOLDENS=1 cargo test -p bench --test bins golden`.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

macro_rules! smoke {
    ($name:ident, $binenv:expr, $needle:expr) => {
        #[test]
        fn $name() {
            let text = run($binenv, &["tiny", "7"]);
            assert!(
                text.contains($needle),
                "{} output missing '{}':\n{}",
                $binenv,
                $needle,
                text
            );
        }
    };
}

smoke!(
    table1_runs,
    env!("CARGO_BIN_EXE_table1"),
    "alliance size vs coverage"
);
smoke!(
    table2_runs,
    env!("CARGO_BIN_EXE_table2"),
    "summary of the collected dataset"
);
smoke!(table3_runs, env!("CARGO_BIN_EXE_table3"), "ASes with IXPs");
smoke!(table4_runs, env!("CARGO_BIN_EXE_table4"), "path inflation");
smoke!(table5_runs, env!("CARGO_BIN_EXE_table5"), "rank");
smoke!(fig1_runs, env!("CARGO_BIN_EXE_fig1"), "scale-free");
smoke!(fig3_runs, env!("CARGO_BIN_EXE_fig3"), "corr(PR, gain)");
smoke!(fig4_runs, env!("CARGO_BIN_EXE_fig4"), "core (p99+)");
smoke!(
    fig5a_runs,
    env!("CARGO_BIN_EXE_fig5a"),
    "composition of the"
);
smoke!(
    econ_runs,
    env!("CARGO_BIN_EXE_econ"),
    "Stackelberg equilibrium"
);
smoke!(
    ext_bgp_runs,
    env!("CARGO_BIN_EXE_ext_bgp"),
    "default paths dominated"
);
smoke!(
    ext_resilience_runs,
    env!("CARGO_BIN_EXE_ext_resilience"),
    "targeted"
);
smoke!(
    ext_sla_runs,
    env!("CARGO_BIN_EXE_ext_sla"),
    "violation rate supervised"
);
smoke!(
    ext_bandwidth_runs,
    env!("CARGO_BIN_EXE_ext_bandwidth"),
    "per-demand"
);
smoke!(
    ext_econ_runs,
    env!("CARGO_BIN_EXE_ext_econ"),
    "profit x cov"
);
smoke!(
    ext_evolution_runs,
    env!("CARGO_BIN_EXE_ext_evolution"),
    "jaccard"
);
smoke!(
    ext_chaos_runs,
    env!("CARGO_BIN_EXE_ext_chaos"),
    "certificate:"
);
smoke!(
    ext_evolve_runs,
    env!("CARGO_BIN_EXE_ext_evolve"),
    "maintenance_checksum:"
);

#[test]
fn fig2a_runs_with_reduced_iterations() {
    let text = run(env!("CARGO_BIN_EXE_fig2a"), &["tiny", "7", "20"]);
    assert!(text.contains("mean SC size"), "{text}");
}

#[test]
fn fig2b_runs() {
    let text = run(env!("CARGO_BIN_EXE_fig2b"), &["tiny", "7"]);
    assert!(text.contains("Panel 1"), "{text}");
    assert!(text.contains("ASesWithIXPs"), "{text}");
}

#[test]
fn fig5bc_runs() {
    let text = run(env!("CARGO_BIN_EXE_fig5bc"), &["tiny", "7"]);
    assert!(text.contains("bidirectional"), "{text}");
}

#[test]
fn calibrate_runs() {
    let text = run(env!("CARGO_BIN_EXE_calibrate"), &["tiny", "7"]);
    assert!(text.contains("greedy MCB"), "{text}");
}

// ---------------------------------------------------------------------
// Golden-snapshot tests
// ---------------------------------------------------------------------

/// Maximum relative divergence tolerated between a recorded float and
/// its golden counterpart. Everything recorded is deterministic (fixed
/// seed, thread-count-invariant evaluators), so this only absorbs
/// cross-platform libm noise.
const REL_EPS: f64 = 1e-9;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

/// Recursively assert structural + numeric equality of two JSON values.
/// Numbers compare at [`REL_EPS`] relative tolerance; everything else
/// must match exactly, including object key order (our serializer is
/// deterministic, so order drift is itself a regression).
fn assert_json_close(at: &str, got: &serde_json::Value, want: &serde_json::Value) {
    if let (Some(a), Some(b)) = (got.as_f64(), want.as_f64()) {
        let scale = 1.0f64.max(a.abs()).max(b.abs());
        assert!(
            (a - b).abs() <= REL_EPS * scale,
            "{at}: {a} differs from golden {b} (rel eps {REL_EPS})"
        );
        return;
    }
    match (got.as_object(), want.as_object()) {
        (Some(g), Some(w)) => {
            let gk: Vec<&str> = g.iter().map(|(k, _)| k.as_str()).collect();
            let wk: Vec<&str> = w.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(gk, wk, "{at}: object keys diverge from golden");
            for ((k, gv), (_, wv)) in g.iter().zip(w) {
                assert_json_close(&format!("{at}.{k}"), gv, wv);
            }
            return;
        }
        (None, None) => {}
        _ => panic!("{at}: value kind diverges from golden"),
    }
    match (got.as_array(), want.as_array()) {
        (Some(g), Some(w)) => {
            assert_eq!(g.len(), w.len(), "{at}: array length diverges from golden");
            for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
                assert_json_close(&format!("{at}[{i}]"), gv, wv);
            }
            return;
        }
        (None, None) => {}
        _ => panic!("{at}: value kind diverges from golden"),
    }
    // Scalars (strings, bools, nulls) and anything else: exact equality.
    assert_eq!(got, want, "{at}: diverges from golden");
}

/// Run `bin` with `--record` into a temp dir and compare the produced
/// `<id>.tiny.json` against `tests/goldens/<id>.tiny.json`. With
/// `UPDATE_GOLDENS=1` the golden is (re)written instead and the test
/// passes vacuously.
fn check_golden(bin: &str, id: &str, args: &[&str]) {
    let tmp = std::env::temp_dir().join(format!("bench-golden-{id}-{}", std::process::id()));
    let tmp_str = tmp.to_str().expect("temp dir path is UTF-8").to_string();
    let mut full: Vec<&str> = args.to_vec();
    full.extend_from_slice(&["--record", &tmp_str]);
    run(bin, &full);
    let produced = tmp.join(format!("{id}.tiny.json"));
    let got_text = std::fs::read_to_string(&produced)
        .unwrap_or_else(|e| panic!("reading recorded {}: {e}", produced.display()));
    let _ = std::fs::remove_dir_all(&tmp);

    let golden_path = goldens_dir().join(format!("{id}.tiny.json"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&golden_path, &got_text).expect("write golden");
        eprintln!("updated {}", golden_path.display());
        return;
    }
    let want_text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1",
            golden_path.display()
        )
    });
    let got: serde_json::Value = serde_json::from_str(&got_text).expect("recorded JSON parses");
    let want: serde_json::Value = serde_json::from_str(&want_text).expect("golden JSON parses");
    assert_json_close(id, &got, &want);
}

#[test]
fn table3_matches_golden_snapshot() {
    // --threads 2 exercises the parallel executor; the evaluators are
    // thread-count invariant, so the record must not depend on it.
    check_golden(
        env!("CARGO_BIN_EXE_table3"),
        "table3",
        &["tiny", "7", "--threads", "2"],
    );
}

#[test]
fn fig2a_matches_golden_snapshot() {
    check_golden(env!("CARGO_BIN_EXE_fig2a"), "fig2a", &["tiny", "7", "20"]);
}

#[test]
fn ext_chaos_matches_golden_snapshot() {
    // The chaos trace fans out per epoch; --threads 2 proves the record
    // is thread-count invariant like every other evaluator.
    check_golden(
        env!("CARGO_BIN_EXE_ext_chaos"),
        "ext_chaos",
        &["tiny", "7", "--threads", "2"],
    );
}

#[test]
fn ext_evolve_matches_golden_snapshot() {
    // The per-epoch ledger (coverage, gaps, swaps, checksum) must be
    // bit-stable; --threads 2 pins thread-count invariance on top.
    check_golden(
        env!("CARGO_BIN_EXE_ext_evolve"),
        "ext_evolve",
        &["tiny", "7", "--threads", "2"],
    );
}

#[test]
fn ext_plan_matches_golden_snapshot() {
    // Planner benchmark: per-transition DAG shape (steps, width, depth,
    // makespan model) and the cross-thread execution checksum.
    // --threads 2 proves the record is thread-count invariant — the bin
    // itself additionally sweeps threads 1/2/4/7 and asserts the
    // execution checksums agree.
    check_golden(
        env!("CARGO_BIN_EXE_ext_plan"),
        "ext_plan",
        &["tiny", "7", "--threads", "2"],
    );
}

#[test]
fn ext_plan_golden_rejects_injected_step_reorder() {
    // A reordered step lands in a different execution layer, which
    // moves its contribution inside the per-step FNV fold — so a step
    // reorder always shows up as a changed plan_checksum, and swapping
    // two transitions permutes the per-transition shape arrays. The
    // golden must bite on both.
    let golden_path = goldens_dir().join("ext_plan.tiny.json");
    let text = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", golden_path.display()));
    let want: serde_json::Value = serde_json::from_str(&text).expect("golden JSON parses");

    fn data_entries(v: &mut serde_json::Value) -> &mut Vec<(String, serde_json::Value)> {
        let serde_json::Value::Object(entries) = v else {
            panic!("golden root is not an object");
        };
        let data = entries
            .iter_mut()
            .find(|(k, _)| k == "data")
            .map(|(_, v)| v)
            .expect("golden has a data field");
        let serde_json::Value::Object(data) = data else {
            panic!("golden data is not an object");
        };
        data
    }

    // Checksum flip: the signature of a reordered step.
    let mut got = want.clone();
    let sum = data_entries(&mut got)
        .iter_mut()
        .find(|(k, _)| k == "plan_checksum")
        .map(|(_, v)| v)
        .expect("golden records a plan checksum");
    let serde_json::Value::Str(s) = sum else {
        panic!("plan checksum is not a string");
    };
    let flipped = if s.starts_with('0') { "f" } else { "0" };
    s.replace_range(0..1, flipped);
    let panicked = std::panic::catch_unwind(|| assert_json_close("ext_plan", &got, &want)).is_err();
    assert!(panicked, "a checksum flip must fail the plan golden");

    // Transition swap: rotate one shape array by one slot.
    let mut got = want.clone();
    let steps = data_entries(&mut got)
        .iter_mut()
        .find(|(k, _)| k == "steps")
        .map(|(_, v)| v)
        .expect("golden records per-transition step counts");
    let serde_json::Value::Array(steps) = steps else {
        panic!("steps is not an array");
    };
    assert!(
        steps.windows(2).any(|w| w[0] != w[1]),
        "step counts are all equal; rotating them would not perturb anything"
    );
    steps.rotate_left(1);
    let panicked = std::panic::catch_unwind(|| assert_json_close("ext_plan", &got, &want)).is_err();
    assert!(panicked, "a transition reorder must fail the plan golden");
}

#[test]
fn serve_bench_matches_golden_snapshot() {
    // serve_bench writes BENCH_serve.json into its CWD, so run it from
    // the temp dir; the --record payload is timing-free (counts,
    // checksums and digests only), which is what the golden pins.
    let tmp = std::env::temp_dir().join(format!("bench-golden-serve-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let tmp_str = tmp.to_str().expect("temp dir path is UTF-8");
    let out = Command::new(env!("CARGO_BIN_EXE_serve_bench"))
        .args([
            "tiny",
            "7",
            "--queries",
            "4000",
            "--threads",
            "2",
            "--record",
            tmp_str,
        ])
        .current_dir(&tmp)
        .output()
        .expect("spawn serve_bench");
    assert!(
        out.status.success(),
        "serve_bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got_text = std::fs::read_to_string(tmp.join("serve_bench.tiny.json"))
        .expect("serve_bench record exists");
    let _ = std::fs::remove_dir_all(&tmp);

    let golden_path = goldens_dir().join("serve_bench.tiny.json");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&golden_path, &got_text).expect("write golden");
        eprintln!("updated {}", golden_path.display());
        return;
    }
    let want_text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1",
            golden_path.display()
        )
    });
    let got: serde_json::Value = serde_json::from_str(&got_text).expect("recorded JSON parses");
    let want: serde_json::Value = serde_json::from_str(&want_text).expect("golden JSON parses");
    assert_json_close("serve_bench", &got, &want);
}

#[test]
fn serve_bench_golden_rejects_perturbed_hit_rate() {
    // The serve golden must bite on its own floats too: nudge the
    // recorded hit rate past REL_EPS and the comparison must panic.
    let golden_path = goldens_dir().join("serve_bench.tiny.json");
    let text = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", golden_path.display()));
    let want: serde_json::Value = serde_json::from_str(&text).expect("golden JSON parses");
    let mut got = want.clone();
    let serde_json::Value::Object(entries) = &mut got else {
        panic!("golden root is not an object");
    };
    let data = entries
        .iter_mut()
        .find(|(k, _)| k == "data")
        .map(|(_, v)| v)
        .expect("golden has a data field");
    let serde_json::Value::Object(data) = data else {
        panic!("golden data is not an object");
    };
    let rate = data
        .iter_mut()
        .find(|(k, _)| k == "hit_rate")
        .map(|(_, v)| v)
        .expect("golden records a hit rate");
    let serde_json::Value::Float(f) = rate else {
        panic!("hit rate is not a float");
    };
    *f += 1e-6;
    let panicked =
        std::panic::catch_unwind(|| assert_json_close("serve_bench", &got, &want)).is_err();
    assert!(panicked, "a 1e-6 perturbation must fail the serve golden");
}

#[test]
fn brokerd_scripted_session_matches_golden() {
    // Drive a fixed request script against a real brokerd process and
    // pin the Debug rendering of every reply. The transcript is fully
    // deterministic (tiny scale, fixed seed, scripted order), so it
    // doubles as a wire-compatibility golden: any change to opcodes,
    // field layouts or reply semantics shows up as a diff here.
    use broker_net::proto::{Conn, Request};

    let mut child = Command::new(env!("CARGO_BIN_EXE_brokerd"))
        .args(["tiny", "7", "--port", "0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn brokerd");
    let stdout = child.stdout.take().expect("brokerd stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let port: u16 = loop {
        let line = lines
            .next()
            .expect("brokerd exited before listening")
            .expect("read brokerd stdout");
        if let Some(rest) = line.strip_prefix("brokerd: listening on 127.0.0.1:") {
            break rest.parse().expect("port parses");
        }
    };
    // Keep draining stdout so brokerd never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    let mut conn = Conn::connect(port).expect("connect to brokerd");
    let mut transcript = String::new();
    let script: &[(&str, Request)] = &[
        ("hello", Request::Hello),
        ("query-hit", Request::Query { s: 0, t: 1, l: 6 }),
        (
            "query-miss",
            Request::Query {
                s: 0,
                t: 9_999_999,
                l: 6,
            },
        ),
        (
            "batch",
            Request::Batch(vec![(0, 1, 6), (1, 0, 1), (2, 2, 3)]),
        ),
        ("stats", Request::Stats),
    ];
    for (label, req) in script {
        let reply = conn.request(req).expect("scripted request");
        transcript.push_str(&format!("{label}: {reply:?}\n"));
    }
    // One raw malformed frame mid-session: the error reply is part of
    // the pinned wire behaviour.
    conn.send_raw(&[1, 0, 0, 0, 0x7f]).expect("send bad opcode");
    let reply = conn
        .read_response()
        .expect("error reply")
        .expect("connection stays open");
    transcript.push_str(&format!("bad-opcode: {reply:?}\n"));
    let bye = conn.request(&Request::Shutdown).expect("shutdown");
    transcript.push_str(&format!("shutdown: {bye:?}\n"));
    drop(conn);
    let status = child.wait().expect("brokerd exit status");
    assert!(status.success(), "brokerd exited with {status}");
    drain.join().expect("drain thread");

    let golden_path = goldens_dir().join("brokerd_session.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&golden_path, &transcript).expect("write golden");
        eprintln!("updated {}", golden_path.display());
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1",
            golden_path.display()
        )
    });
    assert_eq!(
        transcript, want,
        "brokerd wire transcript diverged from golden"
    );
}

#[test]
fn golden_comparison_rejects_off_by_one() {
    // Prove the golden actually bites: perturb one recorded float by
    // more than REL_EPS and the comparison must panic.
    let golden_path = goldens_dir().join("ext_chaos.tiny.json");
    let text = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", golden_path.display()));
    let want: serde_json::Value = serde_json::from_str(&text).expect("golden JSON parses");
    let mut got = want.clone();
    let serde_json::Value::Object(entries) = &mut got else {
        panic!("golden root is not an object");
    };
    let data = entries
        .iter_mut()
        .find(|(k, _)| k == "data")
        .map(|(_, v)| v)
        .expect("golden has a data field");
    let serde_json::Value::Object(data) = data else {
        panic!("golden data is not an object");
    };
    let sat = data
        .iter_mut()
        .find(|(k, _)| k == "saturated")
        .map(|(_, v)| v)
        .expect("golden records a saturated curve");
    let serde_json::Value::Array(curve) = sat else {
        panic!("saturated curve is not an array");
    };
    let serde_json::Value::Float(f) = &mut curve[0] else {
        panic!("saturated curve entry is not a float");
    };
    *f += 1e-6;
    let panicked =
        std::panic::catch_unwind(|| assert_json_close("ext_chaos", &got, &want)).is_err();
    assert!(panicked, "a 1e-6 perturbation must fail the golden check");
}
