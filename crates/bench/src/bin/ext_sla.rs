//! Extension experiment: the supervision control loop in action.
//!
//! Simulates epochs of link degradations over SLA-bound sessions and
//! compares the supervising alliance (observe + reroute over dominating
//! paths) against fixed-path BGP-style routing. Also reports the
//! protected-traffic share (edge-disjoint dominating backups).
//!
//! Usage: `ext_sla [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::max_subgraph_greedy;
use netgraph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{protection_ratio, supervise, LatencyModel, MonitorConfig, Session};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("Extension: SLA", "supervision loop vs fixed-path routing");

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let latency = LatencyModel::sample(&net, rc.seed ^ 0x1a7);

    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x5e55);
    let sessions: Vec<Session> = (0..200)
        .map(|_| Session {
            src: NodeId(rng.gen_range(0..n as u32)),
            dst: NodeId(rng.gen_range(0..n as u32)),
            sla_ms: 130.0,
        })
        .filter(|s| s.src != s.dst)
        .collect();

    let cfg = MonitorConfig {
        epochs: 120,
        degrade_prob: 0.015,
        degrade_factor: 6.0,
        degrade_epochs: 6,
        seed: rc.seed,
    };
    let t0 = std::time::Instant::now();
    let report = supervise(g, sel.brokers(), &latency, &sessions, &cfg);
    eprintln!(
        "[ext_sla] simulated {} epochs in {:?}",
        cfg.epochs,
        t0.elapsed()
    );

    let admitted = report.sessions.iter().filter(|s| s.admitted).count();
    let reroutes: usize = report.sessions.iter().map(|s| s.reroutes).sum();
    println!(
        "sessions admitted:        {admitted}/{}",
        report.sessions.len()
    );
    println!(
        "violation rate supervised: {} (per admitted session-epoch)",
        pct(report.supervised_violation_rate())
    );
    println!(
        "violation rate fixed-path: {}",
        pct(report.baseline_violation_rate())
    );
    println!("reroutes performed:        {reroutes}");

    let pairs: Vec<(NodeId, NodeId)> = sessions.iter().map(|s| (s.src, s.dst)).collect();
    let prot = protection_ratio(g, sel.brokers(), &pairs);
    println!(
        "\nprotected (edge-disjoint dominating backup available): {}",
        pct(prot)
    );
}
