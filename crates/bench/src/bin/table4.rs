//! Table 4: minimal path inflation of the 6.8 % alliance.
//!
//! Compares the l-hop E2E connectivity of the MaxSG alliance (internal
//! connections assumed bidirectional) with free path selection
//! ("ASesWithIXPs"). The paper's finding: the two curves nearly overlap —
//! supervision costs almost no extra hops.
//!
//! Usage: `table4 [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::max_subgraph_greedy;
use routing::inflation_report;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    header("Table 4", "path inflation: alliance vs free path selection");

    let k = rc.budgets(g.node_count())[2];
    let sel = max_subgraph_greedy(g, k);
    eprintln!("[table4] alliance of {} brokers", sel.len());

    let rep = inflation_report(g, sel.brokers(), 8, rc.source_mode());
    println!(
        "{:<6} {:<16} {:<16} {:<10}",
        "l", "free path", "alliance", "gap"
    );
    for l in 0..rep.free.fractions.len() {
        println!(
            "{:<6} {:<16} {:<16} {:<10}",
            l + 1,
            pct(rep.free.fractions[l]),
            pct(rep.dominated.fractions[l]),
            format!("{:+.4}", rep.gap[l])
        );
    }
    println!(
        "\nmax gap: {:.4} (paper: the curves 'almost overlap'; contrast DB\n\
         with ~1,000 brokers, which loses ~18 points at l = 4)",
        rep.max_gap
    );
}
