//! Calibration scratchpad: generate the topology at a given scale and
//! print the aggregate statistics and broker-coverage profile against the
//! paper's targets. Used while tuning `InternetConfig` constants; kept as
//! a diagnostic tool.
//!
//! Usage: `calibrate [tiny|quarter|full] [seed]`

use brokerset::connectivity::saturated_connectivity;
use brokerset::greedy::greedy_mcb;
use brokerset::maxsg::max_subgraph_greedy;
use netgraph::alphabeta::hop_histogram_sampled;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topology::{InternetConfig, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.get(1).map(String::as_str) {
        Some("full") => Scale::Full,
        Some("tiny") => Scale::Tiny,
        _ => Scale::Quarter,
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2014);

    let cfg = InternetConfig::scaled(scale);
    let t0 = std::time::Instant::now();
    let net = cfg.generate(seed);
    eprintln!("generated in {:?}", t0.elapsed());
    println!("{}", net.stats());

    let g = net.graph();
    let n = g.node_count();

    // (alpha, beta): paper says (0.99, 4).
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
    let hist = hop_histogram_sampled(g, 400, &mut rng);
    println!("\nhop CDF (sampled, {} sources):", hist.sources);
    for (l, f) in hist.cdf().iter().enumerate().take(8).skip(1) {
        println!("  P[d <= {l}] = {f:.4}");
    }

    // Coverage and saturated connectivity at the paper's broker budgets
    // (0.19%, 1.9%, 6.8% of nodes).
    let budgets = [
        (n as f64 * 0.0019).round() as usize,
        (n as f64 * 0.019).round() as usize,
        (n as f64 * 0.068).round() as usize,
    ];
    let t0 = std::time::Instant::now();
    let sel = greedy_mcb(g, budgets[2]);
    eprintln!("greedy k={} in {:?}", budgets[2], t0.elapsed());
    println!("\ngreedy MCB (paper targets: 53.1% / 85.4% / 99.3% saturated):");
    for &k in &budgets {
        let s = sel.truncated(k);
        let cov = brokerset::coverage::coverage(g, s.brokers());
        let sat = saturated_connectivity(g, s.brokers());
        println!(
            "  k={k:>6}  coverage={:.4}  saturated={:.4}",
            cov as f64 / n as f64,
            sat.fraction
        );
    }

    let t0 = std::time::Instant::now();
    let msel = max_subgraph_greedy(g, budgets[2]);
    eprintln!("maxsg k={} in {:?}", budgets[2], t0.elapsed());
    println!("\nMaxSG:");
    for &k in &budgets {
        let s = msel.truncated(k);
        let sat = saturated_connectivity(g, s.brokers());
        println!("  k={k:>6}  saturated={:.4}", sat.fraction);
    }

    // IXPB: all IXPs.
    let ixpb = brokerset::baseline::ixp_based(&net, 0);
    let sat = saturated_connectivity(g, ixpb.brokers());
    println!(
        "\nIXPB ({} IXPs): saturated={:.4} (paper: 0.157)",
        ixpb.len(),
        sat.fraction
    );

    // DB at ~1.9%.
    let db = brokerset::baseline::degree_based(g, budgets[1]);
    let sat = saturated_connectivity(g, db.brokers());
    println!(
        "DB   (k={}): saturated={:.4} (paper: 0.725 @1005)",
        budgets[1], sat.fraction
    );
}
