//! Fig. 3: correlation between a candidate broker's PageRank and its
//! marginal connectivity contribution.
//!
//! Take the PRB broker set at sizes 100 and 1,000 (scaled), then for a
//! sample of candidate next brokers measure the saturated-connectivity
//! increase of adding that one candidate, and report the Pearson
//! correlation with the candidate's PageRank. The paper: 0.818 at
//! |B| = 100 collapsing to 0.227 at |B| = 1,000 — which is *why* PRB
//! stops working as the set grows.
//!
//! Usage: `fig3 [tiny|quarter|full] [seed]`

use bench::{header, RunConfig};
use brokerset::{pagerank_based, saturated_connectivity};
use netgraph::{pagerank, NodeId, PageRankConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Fig 3",
        "PageRank vs marginal connectivity of the next broker",
    );

    let budgets = rc.budgets(n);
    let pr = pagerank(g, PageRankConfig::default());
    let prb = pagerank_based(g, budgets[1]);
    let candidates = 300.min(n / 4);
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xf163);

    println!(
        "{:<10} {:<14} {:<12}",
        "|B|", "corr(PR, gain)", "candidates"
    );
    for &size in &budgets[..2] {
        let base = prb.truncated(size);
        let base_sat = saturated_connectivity(g, base.brokers()).connected_pairs;

        let mut pool: Vec<NodeId> = g.nodes().filter(|v| !base.brokers().contains(*v)).collect();
        pool.shuffle(&mut rng);
        pool.truncate(candidates);

        let mut xs = Vec::with_capacity(pool.len());
        let mut ys = Vec::with_capacity(pool.len());
        for &cand in &pool {
            let mut brokers = base.brokers().clone();
            brokers.insert(cand);
            let sat = saturated_connectivity(g, &brokers).connected_pairs;
            xs.push(pr[cand.index()]);
            ys.push(sat.saturating_sub(base_sat) as f64);
        }
        println!(
            "{:<10} {:<14.3} {:<12}",
            size,
            pearson(&xs, &ys),
            pool.len()
        );
    }
    println!(
        "\npaper: correlation 0.818 at |B| = 100 drops to 0.227 at |B| = 1,000\n\
         (the decreasing correlation is the marginal effect behind Fig. 2b)"
    );
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let nf = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}
