//! Table 2: summary of the dataset.
//!
//! The generated topology's aggregate statistics against the paper's 2014
//! snapshot. At quarter/tiny scale the absolute counts shrink
//! proportionally; ratios (IXP attachment, giant fraction) must match.
//!
//! Usage: `table2 [tiny|quarter|full] [seed]`

use bench::{compare_row, header, pct, RunConfig};
use topology::Scale;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let s = net.stats();
    header("Table 2", "summary of the collected dataset");

    let full = matches!(rc.scale, Scale::Full);
    let paper = |v: &str| {
        if full {
            v.to_string()
        } else {
            format!("{v} (full)")
        }
    };

    compare_row("IXPs", &paper("322"), &s.ixps.to_string());
    compare_row("ASes", &paper("51,757"), &s.ases.to_string());
    compare_row(
        "size of the maximum connected subgraph",
        &paper("51,895"),
        &s.giant_component.to_string(),
    );
    compare_row(
        "connections among ASes",
        &paper("347,332"),
        &s.as_as_edges.to_string(),
    );
    compare_row(
        "connections between IXPs and ASes",
        &paper("55,282"),
        &s.as_ixp_edges.to_string(),
    );
    compare_row(
        "AS pairs co-located at an IXP",
        &paper("292,050"),
        &s.ixp_mediated_pairs.to_string(),
    );
    println!(
        "  (note: ours counts *potential* co-location pairs; the paper's row\n\
         counts peerings actually observed over IXPs, a subset)"
    );
    compare_row(
        "ASes directly connected to IXPs",
        &paper("40.2%"),
        &pct(s.frac_as_with_ixp),
    );
    println!(
        "\nderived: mean degree {:.2}, max degree {}",
        s.mean_degree, s.max_degree
    );
}
