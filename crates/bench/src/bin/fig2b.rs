//! Fig. 2b: l-hop E2E connectivity achieved by each selection algorithm.
//!
//! IXPB and Tier1Only (fixed small sets), DB and PRB (size sweep), the
//! MCBG approximation algorithm and MaxSG, plus the free-path reference
//! ("ASesWithIXPs"). Two panels are printed: the saturated connectivity
//! as the broker budget grows, and the l-hop curves at the 6.8 % budget.
//!
//! Usage: `fig2b [tiny|quarter|full] [seed] [--threads N] [--obs PATH]`

use bench::curve_threaded;
use bench::{header, pct, RunConfig};
use brokerset::{
    approx_mcbg, degree_based, ixp_based, max_subgraph_greedy, pagerank_based,
    saturated_connectivity, tier1_only, ApproxConfig, BrokerSelection,
};
use netgraph::NodeSet;
use topology::Scale;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("Fig 2b", "E2E connectivity per selection algorithm");

    let budgets = rc.budgets(n);
    let k_max = budgets[2];

    // Sweep grid: include the paper's three budgets plus intermediate
    // points for curve shape.
    let mut ks: Vec<usize> = vec![budgets[0], budgets[1], k_max];
    for f in [0.005, 0.01, 0.03, 0.05] {
        ks.push(((n as f64 * f) as usize).max(1));
    }
    ks.sort_unstable();
    ks.dedup();

    eprintln!("[fig2b] selecting with each algorithm up to k = {k_max} ...");
    let maxsg = max_subgraph_greedy(g, k_max);
    let db = degree_based(g, k_max);
    let prb = pagerank_based(g, k_max);
    // Approximation algorithm: root sampling keeps full-scale runs
    // tractable; at tiny scale evaluate all roots.
    let approx_cfg = ApproxConfig {
        root_sample: if matches!(rc.scale, Scale::Tiny) {
            None
        } else {
            Some(24)
        },
        seed: rc.seed,
        ..ApproxConfig::paper()
    };

    println!("\nPanel 1: saturated connectivity vs broker budget");
    println!(
        "{:<8} {:<10} {:<10} {:<10} {:<10}",
        "k", "MaxSG", "Approx", "DB", "PRB"
    );
    for &k in &ks {
        let apx = approx_mcbg(g, k, &approx_cfg);
        println!(
            "{:<8} {:<10} {:<10} {:<10} {:<10}",
            k,
            pct(sat(g, &maxsg.truncated(k))),
            pct(sat(g, &apx)),
            pct(sat(g, &db.truncated(k))),
            pct(sat(g, &prb.truncated(k))),
        );
    }

    let ixpb = ixp_based(&net, 0);
    let t1 = tier1_only(&net);
    println!(
        "\nfixed sets: IXPB ({} IXPs) = {}, Tier1Only ({} ASes) = {}",
        ixpb.len(),
        pct(sat(g, &ixpb)),
        t1.len(),
        pct(sat(g, &t1)),
    );
    println!("paper: IXPB <= 15.70%, Tier1Only far below; DB 72.53% @1,005 with a\nsevere marginal effect; approx 85.71% @1,064; MaxSG within 0.5% of approx.");

    println!("\nPanel 2: l-hop connectivity at the 6.8% budget");
    let mode = rc.source_mode();
    let series: Vec<(&str, &NodeSet)> = vec![
        ("MaxSG", maxsg.brokers()),
        ("DB", db.brokers()),
        ("PRB", prb.brokers()),
        ("IXPB", ixpb.brokers()),
        ("Tier1Only", t1.brokers()),
    ];
    let free = NodeSet::full(n);
    let mut all = vec![("ASesWithIXPs", &free)];
    all.extend(series);
    println!(
        "{:<14} {}",
        "algorithm",
        (1..=6).map(|l| format!("l={l:<7}")).collect::<String>()
    );
    for (name, set) in all {
        let curve = curve_threaded(g, set, 6, mode, rc.threads);
        let cells: String = curve
            .fractions
            .iter()
            .map(|&f| format!("{:<8}", pct(f)))
            .collect();
        println!("{name:<14} {cells}");
    }
    rc.dump_obs("fig2b").expect("--obs write failed");
}

fn sat(g: &netgraph::Graph, sel: &BrokerSelection) -> f64 {
    saturated_connectivity(g, sel.brokers()).fraction
}
