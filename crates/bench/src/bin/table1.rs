//! Table 1: alliance size vs QoS coverage.
//!
//! Our approach at the paper's three broker budgets, against the
//! IXP-only mediator designs (refs \[20\]–\[22\]) and the
//! everyone-cooperates designs (refs \[13\], \[14\], \[18\], \[19\]).
//!
//! Usage: `table1 [tiny|quarter|full] [seed]`

use bench::{compare_row, header, pct, ExperimentRecord, RunConfig};
use brokerset::{ixp_based, max_subgraph_greedy, saturated_connectivity};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("Table 1", "alliance size vs coverage of E2E connections");

    let budgets = rc.budgets(n);
    let paper = ["53.14%", "85.41%", "99.29%"];
    let paper_k = ["100 (0.19%)", "1,000 (1.9%)", "3,540 (6.8%)"];

    let t0 = std::time::Instant::now();
    let run = max_subgraph_greedy(g, budgets[2]);
    eprintln!("[table1] MaxSG selection in {:?}", t0.elapsed());
    let mut measured = Vec::new();
    for (i, &k) in budgets.iter().enumerate() {
        let sel = run.truncated(k);
        let sat = saturated_connectivity(g, sel.brokers());
        measured.push((sel.len(), sat.fraction));
        compare_row(
            &format!("our approach, {} brokers ({})", sel.len(), paper_k[i]),
            paper[i],
            &pct(sat.fraction),
        );
    }
    // Provenance record for EXPERIMENTS.md.
    let record = ExperimentRecord::new(
        "table1",
        &rc,
        serde_json::json!({
            "budgets": measured.iter().map(|m| m.0).collect::<Vec<_>>(),
            "saturated": measured.iter().map(|m| m.1).collect::<Vec<_>>(),
        }),
    );
    match record.save(std::path::Path::new("results")) {
        Ok(path) => eprintln!("[table1] record -> {}", path.display()),
        Err(e) => eprintln!("[table1] record not written: {e}"),
    }

    // IXP-only mediators: all IXPs as brokers.
    let ixpb = ixp_based(&net, 0);
    let sat = saturated_connectivity(g, ixpb.brokers());
    compare_row(
        &format!("[20]-[22] all {} IXPs", ixpb.len()),
        "15.70%",
        &pct(sat.fraction),
    );

    // Everyone cooperates: trivially 100% of the giant component.
    let all = netgraph::NodeSet::full(n);
    let sat = saturated_connectivity(g, &all);
    compare_row(
        &format!("[13],[14],[18],[19] all {} ASes", net.as_count()),
        "100.00%",
        &pct(sat.fraction),
    );
    println!("\n(the all-AS row saturates at the giant-component share of pairs)");
}
