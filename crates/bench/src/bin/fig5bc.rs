//! Fig. 5b/c: E2E connectivity under real business relationships.
//!
//! Fig. 5c: forcing valley-free (directional) routing sharply reduces the
//! broker set's E2E connectivity across budgets. Fig. 5b: randomly
//! converting a fraction of inter-broker transit links to settlement-free
//! peering (alliance-internal bidirectionality) recovers most of it —
//! the paper: 30 % conversion brings a 1,000-broker set to 72.5 % and the
//! 3,540-alliance to 84.68 %.
//!
//! Usage: `fig5bc [tiny|quarter|full] [seed] [--threads N] [--obs PATH]`

use bench::{header, pct, RunConfig};
use brokerset::{max_subgraph_greedy, saturated_connectivity};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{directional_connectivity_threaded, PolicyGraph};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Fig 5b/c",
        "directional connectivity and peering conversion",
    );

    let budgets = rc.budgets(n);
    let run = max_subgraph_greedy(g, budgets[2]);
    let pg = PolicyGraph::new(&net);
    let mode = rc.source_mode();

    println!(
        "{:<8} {:<14} {:<14} directional with conversion at 10% / 30% / 100%",
        "k", "bidirectional", "directional"
    );
    for &k in &budgets[1..] {
        let sel = run.truncated(k);
        let bidir = saturated_connectivity(g, sel.brokers()).fraction;
        let dir =
            directional_connectivity_threaded(&pg, Some(sel.brokers()), mode, rc.threads).fraction;
        let mut cells = String::new();
        for frac in [0.1, 0.3, 1.0] {
            let mut converted = pg.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ (frac * 1000.0) as u64);
            converted.convert_interbroker_to_peering(sel.brokers(), frac, &mut rng);
            let rep = directional_connectivity_threaded(
                &converted,
                Some(sel.brokers()),
                mode,
                rc.threads,
            );
            cells.push_str(&format!("{:<10}", pct(rep.fraction)));
        }
        println!(
            "{:<8} {:<14} {:<14} {}",
            sel.len(),
            pct(bidir),
            pct(dir),
            cells
        );
    }
    println!(
        "\npaper: sharp directional drop; with 30% conversion a 1,000-broker\n\
         set reaches 72.5% and the 3,540-alliance 84.68%"
    );
    rc.dump_obs("fig5bc").expect("--obs write failed");
}
