//! Extension experiment: epochal topology churn — incremental broker-set
//! maintenance vs full recomputation.
//!
//! A seeded multi-year growth model ([`topology::evolve`]) emits one
//! [`topology::TopoDelta`] per epoch (IXP births, membership growth,
//! remote peering, AS births/deaths, relationship flips); the lowered
//! [`netgraph::GraphDelta`]s drive a [`brokerset::BrokerMaintainer`]
//! that patches the greedy MCB selection in place (CELF re-seeding of
//! only the *touched* coverage gains). Against it, the batch posture:
//! [`brokerset::greedy_mcb`] recomputed from scratch on every epoch
//! graph. Both sides run on prebuilt CSR graphs, so the comparison times
//! selection maintenance only — neither pays the rebuild.
//!
//! Per epoch the bin reports the swap ledger (brokers out/in), the
//! lazily re-evaluated gain count, and the *coverage gap* vs the exact
//! recompute, asserting the gap stays under a pinned bound; at quarter
//! scale and above it further asserts the incremental path is at least
//! [`SPEEDUP_FLOOR`]× faster over the whole timeline. The maintained
//! state is certified through `Validate` ([`brokerset::BrokerMaintainer::certify`]
//! with the same gap bound) on the final graph.
//!
//! The per-epoch coverage re-derivation fans out through
//! `netgraph::par::map_auto` (adaptive chunking) at thread counts 1, 2,
//! 4 and 7; `maintenance_checksum` is an FNV-1a over the exact broker
//! ids, coverage values and swap counts of every epoch and must be
//! identical at every thread count and across obs on/off builds.
//!
//! Finally the same timeline composes with a [`netgraph::FaultSchedule`]
//! (broker defections mid-growth) and supervised sessions replay over
//! the *evolving* graphs ([`routing::replay_sessions_evolving`]):
//! churn and faults in one timeline.
//!
//! Writes `BENCH_evolve.json` at the repo root (wall-clock totals plus
//! the derived speedup) for quarter/full runs; tiny runs — the smoke and
//! golden tests — skip the file and keep only the `--record` snapshot,
//! which contains no timings and is therefore bit-stable.
//!
//! Usage: `ext_evolve [tiny|quarter|full] [seed] [--threads N]
//! [--obs PATH] [--record DIR]`

use bench::{header, pct, RunConfig};
use brokerset::{greedy_mcb, BrokerMaintainer, MaintainConfig, Validate};
use netgraph::{par, FaultSchedule, Graph, NodeId, NodeSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::replay_sessions_evolving;
use std::collections::BTreeSet;
use std::time::Instant;
use topology::{evolve, GrowthConfig, Scale};

/// Epochs of growth (the paper's dataset spans years; one epoch ≈ one
/// quarter of real time at the calibrated rates).
const EPOCHS: u32 = 24;
/// Pinned relative coverage-gap bound vs full recompute, per epoch.
const GAP_BOUND: f64 = 0.02;
/// Minimum end-to-end speedup of incremental maintenance over full
/// recomputation, asserted at quarter scale and above.
const SPEEDUP_FLOOR: f64 = 10.0;
const SESSION_PAIRS: usize = 24;

/// FNV-1a over a stream of u64 values (fed little-endian byte-wise).
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Coverage `|B ∪ N(B)|` re-derived from scratch (shares no state with
/// the maintainer it audits).
fn coverage_of(g: &Graph, brokers: &[NodeId]) -> usize {
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    for &b in brokers {
        covered.insert(b);
        covered.extend(g.neighbors(b).iter().copied());
    }
    covered.len()
}

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let n0 = net.graph().node_count();
    header(
        "Extension: evolve",
        "incremental broker maintenance under topology churn",
    );

    let cfg = GrowthConfig::calibrated(EPOCHS, n0);
    let stream = evolve(&net, &cfg, rc.seed ^ 0xe70);
    assert!(stream.audit().is_ok(), "growth stream failed its audit");
    let deltas = stream.lower();

    // Prebuild every epoch's CSR graph: the rebuild cost is excluded
    // from BOTH timed paths below.
    let mut graphs: Vec<Graph> = Vec::with_capacity(deltas.len() + 1);
    graphs.push(net.graph().clone());
    for d in &deltas {
        let next = graphs.last().expect("graphs is non-empty").apply_delta(d);
        graphs.push(next);
    }
    let n_final = graphs.last().expect("graphs is non-empty").node_count();
    let k = rc.budgets(n0)[2];
    println!(
        "stream: {} epochs, {} ops, {} births; {n0} -> {n_final} vertices; k = {k}\n",
        deltas.len(),
        stream.op_count(),
        stream.births(),
    );

    // Epoch 0: the initial selection (identical to greedy_mcb).
    let t0 = Instant::now();
    let mut m = BrokerMaintainer::new(&graphs[0], k, MaintainConfig::default());
    let init_s = t0.elapsed().as_secs_f64();

    // Incremental maintenance across the timeline (timed).
    let mut broker_history: Vec<Vec<NodeId>> = Vec::with_capacity(graphs.len());
    broker_history.push(m.brokers().to_vec());
    let t0 = Instant::now();
    for (e, d) in deltas.iter().enumerate() {
        m.apply(&graphs[e], &graphs[e + 1], d);
        broker_history.push(m.brokers().to_vec());
    }
    let inc_s = t0.elapsed().as_secs_f64();

    // The batch posture: full greedy recompute on every epoch graph
    // (timed against the same prebuilt CSRs).
    let t0 = Instant::now();
    let full_sels: Vec<brokerset::BrokerSelection> = deltas
        .iter()
        .enumerate()
        .map(|(e, _)| greedy_mcb(&graphs[e + 1], k))
        .collect();
    let full_s = t0.elapsed().as_secs_f64();
    let speedup = full_s / inc_s.max(1e-12);

    // Per-epoch ledger: swaps, lazy re-evaluations, coverage gap.
    println!(
        "{:<7} {:<5} {:<5} {:<5} {:<10} {:<10} {:<9} {:<8} {:<6}",
        "epoch", "ops", "out", "in", "cov_inc", "cov_full", "gap", "reevals", "exact"
    );
    let mut gaps: Vec<f64> = Vec::with_capacity(deltas.len());
    for i in 0..deltas.len() {
        let r = m.ledger().reports()[i].clone();
        let full_cov = coverage_of(&graphs[i + 1], full_sels[i].order());
        assert_eq!(
            r.coverage,
            coverage_of(&graphs[i + 1], &broker_history[i + 1]),
            "epoch {}: maintained coverage does not re-derive",
            r.epoch
        );
        let gap = (full_cov as f64 - r.coverage as f64) / full_cov as f64;
        assert!(
            gap <= GAP_BOUND,
            "epoch {}: coverage gap {gap:.5} above pinned bound {GAP_BOUND}",
            r.epoch
        );
        m.ledger_mut().set_gap(i, gap);
        gaps.push(gap);
        println!(
            "{:<7} {:<5} {:<5} {:<5} {:<10} {:<10} {:<9.5} {:<8} {:<6}",
            r.epoch,
            deltas[i].op_count(),
            r.swapped_out.len(),
            r.swapped_in.len(),
            r.coverage,
            full_cov,
            gap,
            r.gains_reevaluated,
            if r.recomputed { "yes" } else { "" },
        );
    }
    let ledger = m.ledger().clone();
    println!(
        "\nledger: {} swaps total, max {} per epoch; worst gap {:.5}",
        ledger.total_swaps(),
        ledger.max_swaps_per_epoch(),
        gaps.iter().copied().fold(0.0f64, f64::max),
    );

    // Certify the final state through Validate, gap bound included (the
    // audit itself reruns the exact greedy and re-derives every count).
    let final_g = graphs.last().expect("graphs is non-empty");
    let audit = m.certify(final_g).with_gap_bound(GAP_BOUND).audit();
    println!(
        "certificate: {} checks, {}",
        audit.checks,
        if audit.is_ok() { "all pass" } else { "FAILED" }
    );
    assert!(audit.is_ok(), "maintenance certificate failed: {audit:?}");

    // Thread-count bit-identity: re-derive every epoch's coverage in
    // parallel (adaptive chunking) at 1/2/4/7 workers and fingerprint
    // the full maintenance history; all four checksums must agree.
    let epoch_ids: Vec<usize> = (0..graphs.len()).collect();
    // Pool jobs are 'static: share the epoch snapshots with the workers.
    let graphs_shared = std::sync::Arc::new(graphs);
    let history_shared = std::sync::Arc::new(broker_history);
    let mut checksums = Vec::new();
    for &t in &[1usize, 2, 4, 7] {
        let gs = std::sync::Arc::clone(&graphs_shared);
        let hist = std::sync::Arc::clone(&history_shared);
        let covs: Vec<u64> = par::map_auto(&epoch_ids, t, move |&e| {
            coverage_of(&gs[e], &hist[e]) as u64
        });
        let checksum = fnv1a(
            covs.iter()
                .copied()
                .chain(
                    history_shared
                        .iter()
                        .flat_map(|bs| bs.iter().map(|v| u64::from(v.0))),
                )
                .chain(ledger.reports().iter().map(|r| r.swaps() as u64)),
        );
        checksums.push(checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "maintenance checksum is thread-count dependent: {checksums:x?}"
    );
    let maintenance_checksum = checksums[0];
    println!("maintenance_checksum: {maintenance_checksum:016x} (threads 1/2/4/7, obs on/off)");

    // Compose churn with faults in one timeline: two maintained brokers
    // defect mid-growth and recover near the end while supervised
    // sessions replay over the evolving graphs.
    let mut schedule = FaultSchedule::new(n_final);
    let victims: Vec<NodeId> = history_shared[0].iter().copied().take(2).collect();
    let recover_at = (deltas.len() as u32).saturating_sub(2).max(3);
    for &b in &victims {
        schedule.fail_broker(2, b);
        schedule.recover_broker(recover_at, b);
    }
    schedule.set_horizon(deltas.len() as u32 + 1);
    let broker_sets: Vec<NodeSet> = history_shared
        .iter()
        .map(|bs| NodeSet::from_iter_with_capacity(n_final, bs.iter().copied()))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xeca);
    let mut pairs = Vec::with_capacity(SESSION_PAIRS);
    while pairs.len() < SESSION_PAIRS {
        let (u, v) = (rng.gen_range(0..n0 as u32), rng.gen_range(0..n0 as u32));
        if u != v {
            pairs.push((NodeId(u), NodeId(v)));
        }
    }
    let stats = replay_sessions_evolving(&graphs_shared, &broker_sets, &schedule, &pairs);
    println!(
        "\nsessions over evolving topology: {} replayed; mean availability {};\n\
         {} failovers, {} reroutes; {} sessions never dropped",
        stats.sessions,
        pct(stats.mean_availability),
        stats.failovers,
        stats.reroutes,
        stats.unbroken
    );

    // Epoch application as *planned* transitions: each swap ledger entry
    // is replayed into a (before, after) broker-set pair on that epoch's
    // graph and becomes a dependency-DAG plan — certificate-checked and
    // executed in antichains — instead of an atomic set flip.
    let mut plan_transitions = 0usize;
    let mut plan_steps = 0usize;
    let mut plan_width = 0usize;
    let mut plan_depth = 0usize;
    let mut plan_seq = 0u64;
    let mut plan_makespan = 0u64;
    let mut plan_checksum: u64 = 0xcbf29ce484222325;
    for (i, r) in ledger.reports().iter().enumerate() {
        let (cur, after) = r.transition(&broker_sets[i]);
        if cur == after {
            continue;
        }
        let eg = &graphs_shared[i + 1];
        let plan = routing::ReconfigPlan::build(eg, &cur, &after, &pairs)
            .expect("epoch transition plans build");
        let cert = plan.certificate(eg).audit();
        assert!(cert.is_ok(), "plan certificate (epoch {}): {cert}", r.epoch);
        let ptrace = plan.execute(eg, rc.threads);
        assert!(
            ptrace.cut_audit.is_ok(),
            "unsafe cut (epoch {}): {}",
            r.epoch,
            ptrace.cut_audit
        );
        let s = plan.summary(eg);
        plan_transitions += 1;
        plan_steps += s.steps;
        plan_width = plan_width.max(s.width);
        plan_depth = plan_depth.max(s.depth);
        plan_seq += s.sequential_units;
        plan_makespan += s.makespan_units;
        plan_checksum ^= ptrace.checksum.rotate_left(r.epoch % 63);
    }
    let plan_speedup = if plan_makespan == 0 {
        1.0
    } else {
        plan_seq as f64 / plan_makespan as f64
    };
    println!(
        "planned epochs: {plan_transitions} transitions, {plan_steps} steps, width {plan_width}, \
         depth {plan_depth};\nmakespan {plan_makespan} vs sequential {plan_seq} units \
         ({plan_speedup:.2}x); every cut certified"
    );

    println!(
        "\ntiming: init {init_s:.4}s; incremental {inc_s:.4}s vs full recompute {full_s:.4}s \
         over {} epochs — speedup {speedup:.1}x",
        deltas.len()
    );
    if !matches!(rc.scale, Scale::Tiny) {
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "incremental maintenance only {speedup:.1}x faster than recompute \
             (floor {SPEEDUP_FLOOR}x)"
        );
    }

    // The --record snapshot holds only deterministic values (no wall
    // clocks): per-epoch coverage/gap/swap columns plus the checksum.
    let reports = ledger.reports();
    rc.record(
        "ext_evolve",
        serde_json::json!({
            "epochs": deltas.len(),
            "ops": stream.op_count() as u64,
            "births": stream.births() as u64,
            "nodes_initial": n0,
            "nodes_final": n_final,
            "k": k,
            "coverage_incremental": reports.iter().map(|r| r.coverage as u64).collect::<Vec<u64>>(),
            "coverage_gap": gaps.clone(),
            "swaps_out": reports.iter().map(|r| r.swapped_out.len() as u64).collect::<Vec<u64>>(),
            "swaps_in": reports.iter().map(|r| r.swapped_in.len() as u64).collect::<Vec<u64>>(),
            "gains_reevaluated": reports.iter().map(|r| r.gains_reevaluated as u64).collect::<Vec<u64>>(),
            "recomputed_epochs": reports.iter().filter(|r| r.recomputed).count() as u64,
            "total_swaps": ledger.total_swaps() as u64,
            "certificate_checks": audit.checks as u64,
            "certificate_ok": audit.is_ok(),
            "maintenance_checksum": format!("{maintenance_checksum:016x}"),
            "sessions": stats.sessions as u64,
            "mean_availability": stats.mean_availability,
            "failovers": stats.failovers,
            "reroutes": stats.reroutes,
            "unbroken": stats.unbroken as u64,
            "plan_transitions": plan_transitions as u64,
            "plan_steps": plan_steps as u64,
            "plan_width": plan_width as u64,
            "plan_depth": plan_depth as u64,
            "plan_makespan_units": plan_makespan,
            "plan_sequential_units": plan_seq,
            "plan_speedup": plan_speedup,
            "plan_checksum": format!("{plan_checksum:016x}"),
        }),
    )
    .expect("--record write failed");

    // BENCH_evolve.json carries the wall clocks; quarter/full only so
    // tiny test runs do not litter their cwd.
    if !matches!(rc.scale, Scale::Tiny) {
        let data = serde_json::json!({
            "nodes_initial": n0,
            "nodes_final": n_final,
            "epochs": deltas.len(),
            "k": k,
            "init_select_s": init_s,
            "incremental_total_s": inc_s,
            "full_recompute_total_s": full_s,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "coverage_gap": gaps,
            "gap_bound": GAP_BOUND,
            "swaps_per_epoch": reports.iter().map(|r| r.swaps() as u64).collect::<Vec<u64>>(),
            "maintenance_checksum": format!("{maintenance_checksum:016x}"),
            "obs_enabled": netgraph::obs::enabled(),
        });
        let record = bench::ExperimentRecord::new("ext_evolve", &rc, data);
        let json = serde_json::to_string_pretty(&record).expect("serialize bench record");
        let path = std::path::Path::new("BENCH_evolve.json");
        std::fs::write(path, json).expect("write BENCH_evolve.json");
        println!("wrote {}", path.display());
    }
    rc.dump_obs("ext_evolve").expect("--obs write failed");
}
