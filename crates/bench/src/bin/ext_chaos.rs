//! Extension experiment: chaos harness — connectivity under a scripted
//! fault timeline.
//!
//! One deterministic [`netgraph::FaultSchedule`] drives staged broker
//! defections, the correlated outage of the largest IXP (vertex plus
//! every membership edge), and a full regional blackout, followed by
//! staged recovery. Per epoch we measure saturated and hop-bounded
//! connectivity over the degraded dominated edge set, re-audit the run
//! with a [`brokerset::DegradationCertificate`], replay supervised
//! sessions counting failovers and reroutes, and prove the schedule
//! serializes losslessly by re-running it from its own JSON.
//!
//! Usage: `ext_chaos [tiny|quarter|full] [seed] [--threads N]
//! [--obs PATH] [--record DIR]`

use bench::{header, pct, RunConfig};
use brokerset::{chaos_trace_threaded, max_subgraph_greedy, DegradationCertificate, Validate};
use netgraph::{FaultSchedule, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::{plan_recovery, replay_sessions};
use topology::{ixp_outage_group, largest_ixp, region_outage_group, GeoModel, Region};

const MAX_L: usize = 6;
const HORIZON: u32 = 12;
const SESSION_PAIRS: usize = 32;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: chaos",
        "connectivity under a scripted fault timeline",
    );

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let geo = GeoModel::assign(&net, 0.9, rc.seed ^ 0x9e0);

    // The scripted timeline: defections, correlated outages, recovery.
    let mut schedule = FaultSchedule::new(n);
    let batch = (sel.len() / 10).max(1);
    let defectors: Vec<NodeId> = sel.order().iter().copied().take(3 * batch).collect();
    for (i, chunk) in defectors.chunks(batch).enumerate() {
        for &b in chunk {
            schedule.fail_broker(i as u32 + 1, b);
        }
    }
    let ixp = largest_ixp(&net);
    if let Some(ixp) = ixp {
        let gi = schedule.add_group(ixp_outage_group(&net, ixp));
        schedule.fail_group(4, gi);
        schedule.recover_group(9, gi);
    }
    let region = Region::Europe;
    let gr = schedule.add_group(region_outage_group(&net, &geo, region));
    schedule.fail_group(6, gr);
    schedule.recover_group(10, gr);
    for &b in &defectors {
        schedule.recover_broker(8, b);
    }
    schedule.set_horizon(HORIZON);
    println!(
        "schedule: {} epochs, {} events, {} groups ({} brokers defect in\n\
         batches of {batch}; largest IXP {}; region {region:?} blacks out)\n",
        schedule.horizon(),
        schedule.events().len(),
        schedule.groups().len(),
        defectors.len(),
        ixp.map_or("absent".to_string(), |v| net.name(v).to_string()),
    );

    let trace = chaos_trace_threaded(
        g,
        &sel,
        &schedule,
        Some(MAX_L),
        rc.source_mode(),
        rc.threads,
    );

    println!(
        "{:<7} {:<8} {:<11} {:<13} {:<8} {:<8} {:<8}",
        "epoch",
        "alive",
        "saturated",
        format!("l<={MAX_L}"),
        "masked",
        "cut",
        "skipped"
    );
    for s in &trace.steps {
        println!(
            "{:<7} {:<8} {:<11} {:<13} {:<8} {:<8} {:<8}",
            s.epoch,
            s.alive_brokers,
            pct(s.saturated),
            s.lhop.map_or("-".to_string(), pct),
            s.degradation.masked_nodes,
            s.degradation.masked_edges,
            s.degradation.skipped_sources.len(),
        );
    }
    println!(
        "\nmax degradation {} below baseline; recovered {} from the worst epoch",
        pct(trace.max_degradation()),
        pct(trace.recovered())
    );

    // Every partial result carries its own proof: re-derive the whole
    // trace from the schedule and cross-check.
    let audit = DegradationCertificate::new(g, &sel, &schedule, rc.source_mode(), &trace).audit();
    println!(
        "certificate: {} checks, {}",
        audit.checks,
        if audit.is_ok() { "all pass" } else { "FAILED" }
    );
    assert!(audit.is_ok(), "degradation certificate failed: {audit:?}");

    // The schedule is pure data: JSON round-trip then replay must be
    // bit-identical.
    let json = serde_json::to_string(&schedule).expect("schedule serializes");
    let reloaded: FaultSchedule = serde_json::from_str(&json).expect("schedule deserializes");
    let retrace = chaos_trace_threaded(
        g,
        &sel,
        &reloaded,
        Some(MAX_L),
        rc.source_mode(),
        rc.threads,
    );
    let replay_identical = retrace == trace;
    assert!(replay_identical, "serialized schedule replays differently");
    println!("serialization: replay from JSON round-trip is bit-identical");

    // Supervised sessions under the same timeline: count how often the
    // precomputed backup saves the day versus a full replan.
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xcafe);
    let mut pairs = Vec::with_capacity(SESSION_PAIRS);
    while pairs.len() < SESSION_PAIRS {
        let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
        if u != v {
            pairs.push((NodeId(u), NodeId(v)));
        }
    }
    let stats = replay_sessions(g, sel.brokers(), &schedule, &pairs);
    println!(
        "\nsessions: {} replayed; mean availability {}; {} failovers,\n\
         {} reroutes; {} sessions never dropped",
        stats.sessions,
        pct(stats.mean_availability),
        stats.failovers,
        stats.reroutes,
        stats.unbroken
    );

    // Recovery timeline as *planned* transitions: every broker-set
    // change (defection wave, recovery wave) becomes a dependency-DAG
    // plan whose certificate and per-cut invariants must hold, executed
    // in antichains on the worker pool.
    let transitions =
        plan_recovery(g, sel.brokers(), &schedule, &pairs).expect("recovery plans build");
    let mut plan_steps = 0usize;
    let mut plan_width = 0usize;
    let mut plan_depth = 0usize;
    let mut plan_seq = 0u64;
    let mut plan_makespan = 0u64;
    let mut plan_checksum: u64 = 0xcbf2_9ce4_8422_2325;
    for t in &transitions {
        let cert = t.plan.certificate(g).audit();
        assert!(cert.is_ok(), "plan certificate (epoch {}): {cert}", t.epoch);
        let trace = t.plan.execute(g, rc.threads);
        assert!(
            trace.cut_audit.is_ok(),
            "unsafe cut (epoch {}): {}",
            t.epoch,
            trace.cut_audit
        );
        let s = t.plan.summary(g);
        plan_steps += s.steps;
        plan_width = plan_width.max(s.width);
        plan_depth = plan_depth.max(s.depth);
        plan_seq += s.sequential_units;
        plan_makespan += s.makespan_units;
        plan_checksum ^= trace.checksum.rotate_left(t.epoch % 63);
    }
    let plan_speedup = if plan_makespan == 0 {
        1.0
    } else {
        plan_seq as f64 / plan_makespan as f64
    };
    println!(
        "\nplanned recovery: {} transitions, {plan_steps} steps, width {plan_width},\n\
         depth {plan_depth}; makespan {plan_makespan} vs sequential {plan_seq} units\n\
         ({plan_speedup:.2}x); every cut certified",
        transitions.len(),
    );

    rc.record(
        "ext_chaos",
        serde_json::json!({
            "epochs": trace.steps.len(),
            "saturated": trace.saturated_curve(),
            "lhop": trace.steps.iter().map(|s| s.lhop.unwrap_or(0.0)).collect::<Vec<f64>>(),
            "alive": trace.steps.iter().map(|s| s.alive_brokers as u64).collect::<Vec<u64>>(),
            "masked_nodes": trace.steps.iter().map(|s| s.degradation.masked_nodes as u64).collect::<Vec<u64>>(),
            "max_degradation": trace.max_degradation(),
            "recovered": trace.recovered(),
            "certificate_checks": audit.checks as u64,
            "certificate_ok": audit.is_ok(),
            "replay_identical": replay_identical,
            "sessions": stats.sessions as u64,
            "mean_availability": stats.mean_availability,
            "failovers": stats.failovers,
            "reroutes": stats.reroutes,
            "unbroken": stats.unbroken as u64,
            "plan_transitions": transitions.len() as u64,
            "plan_steps": plan_steps as u64,
            "plan_width": plan_width as u64,
            "plan_depth": plan_depth as u64,
            "plan_makespan_units": plan_makespan,
            "plan_sequential_units": plan_seq,
            "plan_speedup": plan_speedup,
            "plan_checksum": format!("{plan_checksum:016x}"),
        }),
    )
    .expect("--record write failed");
    rc.dump_obs("ext_chaos").expect("--obs write failed");
}
