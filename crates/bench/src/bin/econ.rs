//! Section 7: economic incentives, end to end.
//!
//! 1. Stackelberg equilibrium between the alliance and customer ASes
//!    (existence + adoption by tier).
//! 2. Nash bargaining price for hired employee ASes.
//! 3. A *coverage-derived* coalition game: the value of a broker subset
//!    is its measured saturated connectivity (scaled by the equilibrium
//!    profit). Shapley split, superadditivity / supermodularity checks,
//!    and the coalition-size threshold where supermodularity fails — the
//!    paper's "that's the time to stop increasing the set size".
//!
//! Usage: `econ [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::{max_subgraph_greedy, saturated_connectivity};
use economics::coalition::TableGame;
use economics::{
    is_superadditive, is_supermodular, nash_bargain, shapley_exact, BargainConfig, CustomerAs,
    StackelbergGame,
};
use netgraph::NodeSet;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    header(
        "Section 7",
        "economic incentives for the brokerage coalition",
    );

    // --- Stackelberg -----------------------------------------------------------
    let tier2 = CustomerAs {
        qos_revenue: 6.0,
        qos_saturation: 2.0,
        transit_scale: 1.5,
        transit_peak: 0.55,
        adoption_floor: 0.05,
    };
    let tier3 = CustomerAs {
        qos_revenue: 3.0,
        qos_saturation: 2.5,
        transit_scale: 2.5,
        transit_peak: 0.7,
        adoption_floor: 0.05,
    };
    let mut customers = vec![tier2; 40];
    customers.extend(vec![tier3; 160]);
    let game = StackelbergGame {
        customers,
        unit_cost: 0.4,
        hire_overhead: 0.2,
        max_price: 12.0,
    };
    let eq = game.equilibrium().expect("valid game");
    println!("Stackelberg equilibrium (Theorem 6):");
    println!(
        "  p_B* = {:.3}, leader profit = {:.2}",
        eq.price, eq.leader_utility
    );
    println!(
        "  mean adoption: tier-2 {:.3}, tier-3 {:.3} (floor 0.05)",
        eq.adoptions[..40].iter().sum::<f64>() / 40.0,
        eq.adoptions[40..].iter().sum::<f64>() / 160.0
    );

    // --- Nash bargaining ---------------------------------------------------------
    let bargain = nash_bargain(&BargainConfig {
        broker_price: eq.price,
        routing_cost: 0.3,
        beta: 4,
    })
    .expect("valid bargain");
    println!(
        "\nNash bargaining (Theorem 5): p_j* = p_B/⌈β/2⌉ = {:.3}, agreement: {}",
        bargain.employee_price, bargain.agreement
    );

    // --- Coverage-derived coalition game ------------------------------------------
    // Players: the first 10 brokers of the MaxSG run. U(S) = equilibrium
    // profit x saturated connectivity of S.
    let sel = max_subgraph_greedy(g, 10);
    let players: Vec<_> = sel.order().to_vec();
    let n_players = players.len();
    let n_nodes = g.node_count();
    println!("\nCoalition game over the first {n_players} brokers (value = profit x coverage):");
    let mut table = vec![0.0f64; 1 << n_players];
    for (mask, value) in table.iter_mut().enumerate() {
        if mask == 0 {
            continue;
        }
        let set = NodeSet::from_iter_with_capacity(
            n_nodes,
            players
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask >> j & 1 == 1)
                .map(|(_, &v)| v),
        );
        *value = eq.leader_utility * saturated_connectivity(g, &set).fraction;
    }
    let cg = TableGame::new(table);
    let shapley = shapley_exact(&cg);
    println!("  Shapley split (rank: value):");
    for (j, v) in shapley.values.iter().enumerate() {
        println!("    broker #{:<2} {:>8.3}", j + 1, v);
    }
    println!(
        "  efficient: {}, superadditive: {} (Thm 7), supermodular: {} (Thm 8)",
        shapley.is_efficient(&cg, 1e-6),
        is_superadditive(&cg),
        is_supermodular(&cg)
    );

    // Where does supermodularity stop holding as the coalition grows?
    // Track the grand-coalition marginal contribution of the k-th broker.
    println!("\nmarginal saturated-connectivity gain of the k-th broker:");
    let big = max_subgraph_greedy(g, rc.budgets(n_nodes)[1]);
    let mut prev = 0.0;
    for k in [1, 2, 5, 10, 20, 50, big.len()] {
        let sat = saturated_connectivity(g, big.truncated(k).brokers()).fraction;
        println!(
            "  k = {:<5} coverage {:<8} marginal {:+.4}",
            k,
            pct(sat),
            sat - prev
        );
        prev = sat;
    }
    println!(
        "\npaper: early members enjoy network externalities (supermodular\n\
         regime); once the important ASes are in, marginals shrink and the\n\
         coalition should stop growing"
    );
}
