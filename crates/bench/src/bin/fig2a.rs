//! Fig. 2a: CDF of the Set Cover (SC) baseline's broker set size.
//!
//! 300 randomized SC runs (the paper's count; pass a third argument to
//! change it). SC always achieves 100 % coverage but needs ~76 % of all
//! vertices — the motivating contrast for a *selected* broker set.
//!
//! Usage: `fig2a [tiny|quarter|full] [seed] [runs]`

use bench::{header, pct, ArgExtras, RunConfig};
use brokerset::set_cover;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (rc, extra) = RunConfig::from_args_extended(
        ArgExtras {
            value_flags: &[],
            max_positionals: 1,
        },
        " [runs]",
    );
    let runs: usize = extra
        .positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("Fig 2a", "CDF of the SC algorithm's broker set size");

    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xf19a);
    let t0 = std::time::Instant::now();
    let mut sizes: Vec<usize> = (0..runs).map(|_| set_cover(g, &mut rng).len()).collect();
    eprintln!("[fig2a] {runs} SC runs in {:?}", t0.elapsed());
    sizes.sort_unstable();

    println!(
        "{:<12} {:<12} {:<12}",
        "quantile", "set size", "fraction of V"
    );
    let mut quantiles: Vec<(String, serde_json::Value)> = Vec::new();
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let idx = ((sizes.len() - 1) as f64 * q).round() as usize;
        println!(
            "{:<12} {:<12} {:<12}",
            format!("p{:.0}", q * 100.0),
            sizes[idx],
            pct(sizes[idx] as f64 / n as f64)
        );
        quantiles.push((
            format!("p{:.0}", q * 100.0),
            serde_json::Value::from(sizes[idx]),
        ));
    }
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    println!(
        "\nmean SC size: {:.0} = {} of all vertices (paper: ~40,000 of 52,079,\n\
         i.e. >76% — versus 6.8% for the selected alliance)",
        mean,
        pct(mean / n as f64)
    );
    // The informed contrast: a greedy dominating set.
    let gds = brokerset::baseline::greedy_dominating_set(g);
    println!(
        "greedy dominating set (informed selection): {} brokers = {}",
        gds.len(),
        pct(gds.len() as f64 / n as f64)
    );
    rc.record(
        "fig2a",
        serde_json::json!({
            "runs": runs,
            "quantiles": serde_json::Value::Object(quantiles),
            "mean_sc_size": mean,
            "gds_size": gds.len(),
            "node_count": n,
        }),
    )
    .expect("--record write failed");
    rc.dump_obs("fig2a").expect("--obs write failed");
}
