//! Fig. 5a: composition of the alliance and the share of connections it
//! carries without outside help.
//!
//! Two findings are reproduced: the alliance is *diversified* (IXPs,
//! transit, content, enterprise — not a tier-1 monopoly), and >90 % of
//! dominated E2E connections need no non-broker intermediary.
//!
//! Usage: `fig5a [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::{broker_only_connectivity, composition_histogram, max_subgraph_greedy};
use topology::NodeKind;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    header(
        "Fig 5a",
        "alliance composition and broker-only traffic share",
    );

    let k = rc.budgets(g.node_count())[2];
    let sel = max_subgraph_greedy(g, k);
    let hist = composition_histogram(&net, &sel);

    println!("composition of the {}-broker alliance:", sel.len());
    for (kind, count) in NodeKind::all().iter().zip(hist) {
        if count > 0 {
            println!(
                "  {:<12} {:>6}  ({})",
                kind.to_string(),
                count,
                pct(count as f64 / sel.len() as f64)
            );
        }
    }

    let rep = broker_only_connectivity(&net, &sel, 4000, rc.seed ^ 0x5a);
    println!(
        "\nE2E connections carried by the alliance alone: {} of dominated\n\
         pairs ({} sampled; paper: >90% need no non-broker hop)",
        pct(rep.fraction_of_connected),
        rep.sampled_pairs
    );
}
