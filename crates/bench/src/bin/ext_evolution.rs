//! Extension experiment: alliance stability as the Internet grows.
//!
//! Select the alliance on a historical snapshot (60–90 % of today's
//! stubs), then measure (a) how much of the historical alliance is still
//! in today's optimal alliance (Jaccard) and (b) how much connectivity
//! the *old* alliance still delivers on *today's* topology without any
//! reselection — the operational question for a coalition whose
//! membership contracts take months to renegotiate.
//!
//! Usage: `ext_evolution [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::{max_subgraph_greedy, saturated_connectivity};
use netgraph::NodeSet;
use topology::{historical_snapshot, selection_jaccard, InternetConfig};

fn main() {
    let rc = RunConfig::from_args();
    let cfg = InternetConfig::scaled(rc.scale);
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: evolution",
        "alliance stability under Internet growth",
    );

    let k = rc.budgets(n)[2];
    let today = max_subgraph_greedy(g, k);
    let today_sat = saturated_connectivity(g, today.brokers()).fraction;
    println!(
        "today: {} nodes, alliance {} brokers, connectivity {}",
        n,
        today.len(),
        pct(today_sat)
    );

    println!(
        "\n{:<14} {:<12} {:<14} {:<20}",
        "stub history", "jaccard", "old-on-today", "reselection gain"
    );
    for frac in [0.6, 0.75, 0.9] {
        let (old_net, map) = historical_snapshot(&net, &cfg, frac);
        let old_k = ((old_net.graph().node_count() as f64 * 0.068).round() as usize).max(1);
        let old_sel = max_subgraph_greedy(old_net.graph(), old_k);
        // Translate old brokers into today's id space.
        let old_today =
            NodeSet::from_iter_with_capacity(n, old_sel.order().iter().map(|&v| map[v.index()]));
        let jac = selection_jaccard(today.brokers(), &old_today);
        let stale_sat = saturated_connectivity(g, &old_today).fraction;
        println!(
            "{:<14} {:<12.3} {:<14} {:<20}",
            format!("{:.0}%", frac * 100.0),
            jac,
            pct(stale_sat),
            format!("{:+.2} pts", 100.0 * (today_sat - stale_sat))
        );
    }
    println!(
        "\nreading: the alliance core is stable (high overlap), and even a\n\
         year-stale alliance keeps most of its connectivity — reselection\n\
         mainly picks up providers of newly attached stubs."
    );
}
