//! Fig. 4: where do the brokers sit — network core or edge?
//!
//! The paper visualizes DB's brokers crowding the core while MaxSG also
//! covers the outer ring. We quantify the same contrast with the k-core
//! decomposition: layers are population percentiles of coreness (edge =
//! bottom 50 % of vertices, core = top 1 %), and we report how each
//! selection distributes over them plus how well each layer's *vertices*
//! are covered (the paper's "outer ring left uncovered").
//!
//! Usage: `fig4 [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::coverage::dominated_set;
use brokerset::{degree_based, max_subgraph_greedy, BrokerSelection};
use netgraph::coreness;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Fig 4",
        "broker placement: network core vs edge (coreness layers)",
    );

    let k = rc.budgets(n)[1]; // the 1.9% budget, like the paper's ~1,005-broker sets
    let core = coreness(g);

    // Layer thresholds at population percentiles of coreness.
    let mut sorted = core.clone();
    sorted.sort_unstable();
    let q = |p: f64| sorted[((n - 1) as f64 * p) as usize];
    let cuts = [q(0.5), q(0.9), q(0.99)];
    let layer_of = |c: u32| -> usize {
        if c <= cuts[0] {
            0
        } else if c <= cuts[1] {
            1
        } else if c <= cuts[2] {
            2
        } else {
            3
        }
    };
    let label = [
        "edge (p0-50)",
        "outer (p50-90)",
        "inner (p90-99)",
        "core (p99+)",
    ];

    let db = degree_based(g, k);
    let maxsg = max_subgraph_greedy(g, k);

    let hist = |sel: &BrokerSelection| -> [usize; 4] {
        let mut h = [0usize; 4];
        for &v in sel.order() {
            h[layer_of(core[v.index()])] += 1;
        }
        h
    };
    let mut all = [0usize; 4];
    for v in g.nodes() {
        all[layer_of(core[v.index()])] += 1;
    }
    let hdb = hist(&db);
    let hms = hist(&maxsg);

    println!(
        "{:<16} {:<12} {:<12} {:<12}",
        "layer", "all nodes", "DB brokers", "MaxSG brokers"
    );
    for i in 0..4 {
        println!(
            "{:<16} {:<12} {:<12} {:<12}",
            label[i],
            pct(all[i] as f64 / n as f64),
            pct(hdb[i] as f64 / db.len() as f64),
            pct(hms[i] as f64 / maxsg.len() as f64)
        );
    }

    // Coverage per layer: fraction of each layer's vertices inside
    // B ∪ N(B) — the "outer ring uncovered" reading.
    let cov_db = dominated_set(g, db.brokers());
    let cov_ms = dominated_set(g, maxsg.brokers());
    println!("\n{:<16} {:<16} {:<16}", "layer coverage", "DB", "MaxSG");
    for i in 0..4 {
        let mut db_cov = 0usize;
        let mut ms_cov = 0usize;
        for v in g.nodes() {
            if layer_of(core[v.index()]) == i {
                if cov_db.contains(v) {
                    db_cov += 1;
                }
                if cov_ms.contains(v) {
                    ms_cov += 1;
                }
            }
        }
        println!(
            "{:<16} {:<16} {:<16}",
            label[i],
            pct(db_cov as f64 / all[i].max(1) as f64),
            pct(ms_cov as f64 / all[i].max(1) as f64)
        );
    }
    println!(
        "\npaper: DB overcrowds the core, leaving the network edge mostly\n\
         uncovered; MaxSG covers the outer ring as well (Fig. 4a vs 4b)"
    );
}
