//! Fig. 1: structural characterization of the AS-level topology.
//!
//! The paper's Fig. 1 is a visualization showing a scale-free, layered
//! network with IXPs at both core and edge. We print the quantitative
//! fingerprint (degree tail, clustering, k-core layering, diameter, IXP
//! placement across layers) and optionally dump a DOT sample for
//! rendering.
//!
//! Usage: `fig1 [tiny|quarter|full] [seed] [--dot out.dot]`

use bench::{header, pct, ArgExtras, RunConfig};
use netgraph::{coreness, degree_stats, diameter_lower_bound, mean_clustering, NodeSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topology::NodeKind;

fn main() {
    let (rc, extra) = RunConfig::from_args_extended(
        ArgExtras {
            value_flags: &["--dot"],
            max_positionals: 0,
        },
        " [--dot out.dot]",
    );
    let net = rc.internet();
    let g = net.graph();
    header("Fig 1", "scale-free, layered structure of the topology");

    let stats = degree_stats(g, 0.02);
    println!(
        "degree: min {}, mean {:.2}, max {}",
        stats.min, stats.mean, stats.max
    );
    if let Some(alpha) = stats.tail_exponent {
        println!(
            "power-law tail exponent (Hill, top {} nodes): {:.2}",
            stats.tail_count, alpha
        );
    }
    println!(
        "mean clustering coefficient: {:.4}",
        clustering_sampled(&net)
    );
    if let Some(r) = netgraph::degree_assortativity(g) {
        println!("degree assortativity: {r:.3} (the Internet is disassortative)");
    }
    println!(
        "diameter (double-sweep lower bound): {}",
        diameter_lower_bound(g).unwrap_or(0)
    );

    // Layering: k-core quartiles, with IXP share per layer — the paper's
    // "IXPs at both its core and edge".
    let core = coreness(g);
    let max_core = *core.iter().max().unwrap_or(&0);
    println!("\nmax coreness: {max_core}");
    println!("{:<12} {:<10} {:<12}", "layer", "nodes", "IXP share");
    let edges = [max_core / 4, max_core / 2, 3 * max_core / 4, max_core + 1];
    let label = ["edge (Q1)", "outer (Q2)", "inner (Q3)", "core (Q4)"];
    for (i, &hi) in edges.iter().enumerate() {
        let lo = if i == 0 { 0 } else { edges[i - 1] };
        let mut nodes = 0usize;
        let mut ixps = 0usize;
        for v in g.nodes() {
            let c = core[v.index()];
            if c >= lo && c < hi.max(lo + 1) {
                nodes += 1;
                if net.kind(v) == NodeKind::Ixp {
                    ixps += 1;
                }
            }
        }
        println!(
            "{:<12} {:<10} {:<12}",
            label[i],
            nodes,
            if nodes == 0 {
                "-".to_string()
            } else {
                pct(ixps as f64 / nodes as f64)
            }
        );
    }

    // Optional DOT export of the core + a neighborhood sample.
    if let Some(path) = extra.flag("--dot") {
        let mut keep = NodeSet::new(g.node_count());
        // Top-coreness vertices plus random edge vertices.
        let mut order: Vec<_> = g.nodes().collect();
        order.sort_by_key(|v| std::cmp::Reverse(core[v.index()]));
        for &v in order.iter().take(60) {
            keep.insert(v);
        }
        use rand::seq::SliceRandom;
        let mut rng = ChaCha8Rng::seed_from_u64(rc.seed);
        order.shuffle(&mut rng);
        for &v in order.iter().take(60) {
            keep.insert(v);
        }
        let (sub, map) = g.induced_subgraph(&keep);
        let labels: Vec<String> = map.iter().map(|&v| net.name(v).to_string()).collect();
        let ixps = NodeSet::from_iter_with_capacity(
            sub.node_count(),
            sub.nodes()
                .filter(|&v| net.kind(map[v.index()]) == NodeKind::Ixp),
        );
        std::fs::write(path, netgraph::to_dot(&sub, Some(&ixps), Some(&labels)))
            .expect("write dot file");
        println!("\nwrote DOT sample ({} nodes) to {path}", sub.node_count());
    }
}

/// Clustering on big graphs is quadratic in hub degree; sample the
/// quarter/full scales through an induced subgraph.
fn clustering_sampled(net: &topology::Internet) -> f64 {
    let g = net.graph();
    if g.node_count() <= 2000 {
        return mean_clustering(g);
    }
    use rand::seq::SliceRandom;
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    let mut nodes: Vec<_> = g.nodes().collect();
    nodes.shuffle(&mut rng);
    let keep = NodeSet::from_iter_with_capacity(g.node_count(), nodes.into_iter().take(2000));
    let (sub, _) = g.induced_subgraph(&keep);
    mean_clustering(&sub)
}
