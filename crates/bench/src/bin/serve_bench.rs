//! `serve_bench` — closed-loop benchmark of the `brokerd` query plane.
//!
//! Builds the hop-bounded reachability index for the scaled synthetic
//! topology, serves it over the real TCP protocol ([`broker_net::proto`])
//! from an in-process server, and drives a deterministic synthetic
//! query stream against it in batch frames, measuring:
//!
//! - **cold vs warm index**: time to build the index from the graph vs
//!   time to restore it from its serialized `BRI1` bytes (plus a served
//!   sweep over each — the answers must be identical);
//! - **latency/throughput**: per-query and per-batch p50/p99 and QPS at
//!   server worker counts {1, 2, 4, 0 = all cores};
//! - **hit rate under chaos**: a scripted 12-epoch fault schedule is
//!   applied to the index ([`ReachIndex::apply_state`]), recording per
//!   epoch the shards rebuilt/kept/deactivated and the hit rate over a
//!   fixed query sample, with each epoch's sample answers differentially
//!   checked against the exact msbfs oracle ([`brokerset::exact_query`]).
//!
//! **Every answer is checksum-audited**: the FNV fingerprint of the
//! served answer stream must be identical across all server thread
//! counts and across the cold vs warm index, and (at tiny/quarter
//! scale) a prefix of the stream must match the exact two-source msbfs
//! evaluation bit for bit.
//!
//! Results maintain `BENCH_serve.json` at the repo root as a `scales`
//! array (same read-modify-write convention as `BENCH_engine.json`).
//! The committed quarter entry is produced by the headline run:
//!
//! ```sh
//! cargo run --release -p bench --bin serve_bench -- quarter --threads 0
//! ```
//!
//! which drives >= 1,000,000 queries (5 sweeps x 200,000). `--queries N`
//! rescales the total (the CI smoke uses 10,000), and `--record DIR`
//! writes the deterministic, timing-free subset of the results for the
//! golden-snapshot test.
//!
//! `--attach PORT` switches to client-only mode: instead of starting an
//! in-process server, the canonical stream is driven against an already
//! running `brokerd` on that port (which must serve the same
//! scale/seed), the answers are checksum-asserted against the local
//! exact oracle, and a `SHUTDOWN` frame is sent at the end. This is the
//! `ci.sh` serve smoke.

use bench::{header, ArgExtras, RunConfig};
use broker_net::proto::{self, Request, Response, ServeCounters};
use brokerset::{answers_checksum, exact_query, max_subgraph_greedy, ReachIndex, StitchAnswer};
use netgraph::{par, FaultSchedule, FaultState, Graph, NodeId, NodeSet};
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Hop cap of the served index — matches `brokerd` so the two binaries
/// agree on answers for the same scale/seed.
const MAX_L: usize = 6;
/// Queries per `BATCH` frame in the closed loop.
const BATCH: usize = 512;
/// Default total queries across all sweeps (the acceptance floor).
const DEFAULT_QUERIES: usize = 1_000_000;

/// The deterministic synthetic workload: uniform (s, t) pairs with a
/// uniform hop bound in 1..=MAX_L, from a seeded ChaCha8 stream.
fn gen_queries(n: usize, count: usize, seed: u64) -> Vec<(u32, u32, u16)> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(1..=MAX_L as u16),
            )
        })
        .collect()
}

/// A scripted 12-epoch mixed fault schedule: broker defections, node
/// and edge failures, then staged recovery — deterministic in the seed.
fn chaos_schedule(g: &Graph, brokers: &NodeSet, seed: u64) -> FaultSchedule {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xc4a05);
    let mut sched = FaultSchedule::new(g.node_count());
    let roster: Vec<NodeId> = brokers.iter().collect();
    // Three brokers defect early and rejoin late.
    for i in 0..3usize {
        let b = roster[rng.gen_range(0..roster.len())];
        sched.fail_broker(1 + i as u32, b);
        sched.recover_broker(8 + i as u32, b);
    }
    // Plain nodes go down mid-schedule.
    for i in 0..4usize {
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        sched.fail_node(3 + (i as u32 % 3), v);
        sched.recover_node(10, v);
    }
    // A few concrete edges get cut and spliced back.
    for _ in 0..4usize {
        let u = NodeId(rng.gen_range(0..g.node_count() as u32));
        if let Some(&v) = g.neighbors(u).first() {
            sched.fail_edge(5, u, v);
            sched.recover_edge(11, u, v);
        }
    }
    sched.set_horizon(12);
    sched
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i.min(sorted.len() - 1)]
}

/// One served sweep: drive `queries` against a fresh in-process server
/// evaluating batches at `threads` workers, closed-loop (send one batch
/// frame, wait for its answers, repeat). Returns the answers in stream
/// order plus the latency samples.
struct SweepResult {
    answers: Vec<Option<StitchAnswer>>,
    wall_s: f64,
    batch_us: Vec<f64>,
}

fn serve_sweep(
    index: &Arc<ReachIndex>,
    queries: &[(u32, u32, u16)],
    threads: usize,
) -> SweepResult {
    let listener = proto::Listener::bind(0).expect("bind ephemeral listener");
    let port = listener.port().expect("bound port");
    let server_index = Arc::clone(index);
    let server = std::thread::spawn(move || {
        let counters = ServeCounters::new();
        // Single benchmark client: serve connections sequentially until
        // one of them asks for shutdown.
        loop {
            let Ok(conn) = listener.accept() else { break };
            match proto::serve(conn, &server_index, &counters, threads) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => {
                    eprintln!("serve_bench: server connection error: {e}");
                    break;
                }
            }
        }
    });

    let mut conn = proto::Conn::connect(port).expect("connect");
    let hello = conn.request(&Request::Hello).expect("hello");
    assert!(
        matches!(hello, Response::HelloOk { n, .. } if n as usize == index.node_count()),
        "unexpected handshake: {hello:?}"
    );
    let mut answers = Vec::with_capacity(queries.len());
    let mut batch_us = Vec::with_capacity(queries.len() / BATCH + 1);
    let t0 = Instant::now();
    for chunk in queries.chunks(BATCH) {
        let b0 = Instant::now();
        let resp = conn
            .request(&Request::Batch(chunk.to_vec()))
            .expect("batch round trip");
        batch_us.push(b0.elapsed().as_secs_f64() * 1e6);
        match resp {
            Response::BatchAnswers(batch) => {
                assert_eq!(batch.len(), chunk.len(), "answer count mismatch");
                answers.extend(batch);
            }
            other => panic!("expected batch answers, got {other:?}"),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let bye = conn.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(bye, Response::Bye), "expected BYE, got {bye:?}");
    server.join().expect("server thread");
    SweepResult {
        answers,
        wall_s,
        batch_us,
    }
}

/// Client-only smoke against an external `brokerd`: drive the stream,
/// assert the checksum against the local exact oracle, shut it down.
fn attach_smoke(rc: &RunConfig, port: u16, queries: &[(u32, u32, u16)]) {
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    let sel = max_subgraph_greedy(g, rc.budgets(n)[1]);
    // Sleep-free readiness: retry the connect until the listener is up,
    // then block on the HELLO reply — the reply itself is the readiness
    // signal, so no fixed delay is ever needed between daemon start and
    // the first query.
    let (mut conn, hello) = proto::Conn::handshake(port, 64).expect("handshake with brokerd");
    match hello {
        Response::HelloOk { n: served, k, .. } => {
            assert_eq!(served as usize, n, "brokerd serves a different topology");
            assert_eq!(k as usize, sel.len(), "brokerd serves a different roster");
        }
        other => panic!("unexpected handshake: {other:?}"),
    }
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(BATCH) {
        match conn
            .request(&Request::Batch(chunk.to_vec()))
            .expect("batch round trip")
        {
            Response::BatchAnswers(batch) => answers.extend(batch),
            other => panic!("expected batch answers, got {other:?}"),
        }
    }
    let served_sum = answers_checksum(answers.iter().copied());
    let clear = FaultState::all_clear(n);
    let exact_sum =
        answers_checksum(queries.iter().map(|&(s, t, l)| {
            exact_query(g, sel.brokers(), &clear, NodeId(s), NodeId(t), l.into())
        }));
    assert_eq!(
        served_sum, exact_sum,
        "served answers diverge from the exact msbfs evaluation"
    );
    let stats = conn.request(&Request::Stats).expect("stats");
    println!("  brokerd stats after smoke: {stats:?}");
    let bye = conn.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(bye, Response::Bye), "expected BYE, got {bye:?}");
    println!(
        "  serve smoke passed: {} queries, checksum {served_sum:016x} == exact evaluation",
        queries.len()
    );
}

#[allow(clippy::too_many_lines)]
fn main() {
    let (rc, extras) = RunConfig::from_args_extended(
        ArgExtras {
            value_flags: &["--queries", "--attach"],
            max_positionals: 0,
        },
        " [--queries N] [--attach PORT]",
    );
    let queries_total: usize = match extras.flag("--queries") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --queries expects a count, got '{v}'");
            std::process::exit(2);
        }),
        None => DEFAULT_QUERIES,
    };
    let attach: Option<u16> = extras.flag("--attach").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --attach expects a port number, got '{v}'");
            std::process::exit(2);
        })
    });
    header("serve_bench", "closed-loop brokerd query-plane benchmark");

    if let Some(port) = attach {
        // Smoke mode: the topology is regenerated locally only to run
        // the exact oracle; the index lives in the external brokerd.
        let n = topology::InternetConfig::scaled(rc.scale).node_count();
        let queries = gen_queries(n, queries_total, rc.seed ^ 0x5e7e);
        attach_smoke(&rc, port, &queries);
        return;
    }

    let wall_start = Instant::now();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    let sel = max_subgraph_greedy(g, rc.budgets(n)[1]);
    let brokers = sel.brokers();
    let hw = par::resolve_threads(0);

    // Cold: build the index from the graph. Warm: restore it from its
    // serialized bytes. Both must answer identically.
    let t0 = Instant::now();
    let cold = ReachIndex::build(g, brokers, MAX_L, rc.threads);
    let build_s = t0.elapsed().as_secs_f64();
    let bytes = cold.to_bytes();
    let t0 = Instant::now();
    let warm = ReachIndex::from_bytes(&bytes).expect("warm reload of the index bytes");
    let load_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        cold.digest(),
        warm.digest(),
        "warm reload changed the index"
    );
    println!(
        "  index: {} brokers x {n} nodes, {} bytes; cold build {build_s:.3}s, warm load {load_s:.4}s",
        cold.broker_count(),
        bytes.len()
    );

    // 5 sweeps (warm at 4 worker counts + cold) share the total budget.
    let queries_per = (queries_total / 5).max(BATCH);
    let queries = gen_queries(n, queries_per, rc.seed ^ 0x5e7e);

    // Exact differential audit at tiny/quarter: a prefix of the stream
    // against the two-source msbfs oracle (checksummed, not sampled —
    // every compared answer must agree bit for bit).
    let oracle_len = match rc.scale {
        topology::Scale::Tiny => queries.len().min(2000),
        topology::Scale::Quarter => queries.len().min(1000),
        topology::Scale::Full => 0,
    };
    let clear = FaultState::all_clear(n);
    let oracle_sum = answers_checksum((0..oracle_len).map(|i| {
        let (s, t, l) = queries[i];
        exact_query(g, brokers, &clear, NodeId(s), NodeId(t), l.into())
    }));
    let index_prefix_sum = answers_checksum(
        queries[..oracle_len]
            .iter()
            .map(|&(s, t, l)| cold.query(NodeId(s), NodeId(t), l.into())),
    );
    if oracle_len > 0 {
        assert_eq!(
            index_prefix_sum, oracle_sum,
            "index answers diverge from the exact msbfs evaluation"
        );
        println!(
            "  oracle: first {oracle_len} answers == exact msbfs evaluation (checksum {oracle_sum:016x})"
        );
    }

    // The served sweeps. Rows keyed (index kind, server threads); all
    // answer checksums must agree.
    let warm_arc = Arc::new(warm);
    let cold_arc = Arc::new(cold);
    let mut rows = Vec::new();
    let mut stream_sum: Option<u64> = None;
    let mut warm_p99_at_all_cores = f64::NAN;
    let sweeps: Vec<(&str, &Arc<ReachIndex>, usize)> = vec![
        ("warm", &warm_arc, 1),
        ("warm", &warm_arc, 2),
        ("warm", &warm_arc, 4),
        ("warm", &warm_arc, 0),
        ("cold", &cold_arc, 0),
    ];
    println!(
        "  closed loop: {} queries per sweep, batch {BATCH}:",
        queries.len()
    );
    for (kind, index, threads) in sweeps {
        let resolved = par::resolve_threads(threads);
        let res = serve_sweep(index, &queries, threads);
        let sum = answers_checksum(res.answers.iter().copied());
        match stream_sum {
            None => stream_sum = Some(sum),
            Some(prev) => assert_eq!(
                prev, sum,
                "answer stream changed across sweeps ({kind}, threads {threads})"
            ),
        }
        let hits = res.answers.iter().filter(|a| a.is_some()).count();
        let mut sorted = res.batch_us.clone();
        sorted.sort_by(f64::total_cmp);
        let (b50, b99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
        let (q50, q99) = (b50 / BATCH as f64, b99 / BATCH as f64);
        let qps = res.answers.len() as f64 / res.wall_s;
        if kind == "warm" && threads == 0 {
            warm_p99_at_all_cores = q99;
        }
        println!(
            "    {kind:<4} threads {threads} ({resolved:2} workers)  p50 {q50:.2}us  p99 {q99:.2}us  {qps:>10.0} q/s"
        );
        rows.push(serde_json::json!({
            "index": kind,
            "threads": threads,
            "threads_resolved": resolved,
            "queries": res.answers.len(),
            "batch": BATCH,
            "wall_s": res.wall_s,
            "qps": qps,
            "p50_us": q50,
            "p99_us": q99,
            "batch_p50_us": b50,
            "batch_p99_us": b99,
            "hits": hits,
            "checksum": format!("{sum:016x}"),
        }));
    }
    let stream_sum = stream_sum.unwrap_or(0);
    let queries_driven = rows
        .iter()
        .map(|r| r["queries"].as_u64().unwrap_or(0))
        .sum::<u64>();
    let hits = rows[0]["hits"].as_u64().unwrap_or(0);
    let hit_rate = hits as f64 / queries.len().max(1) as f64;
    println!(
        "  {queries_driven} queries served total, hit rate {:.2}%, stream checksum {stream_sum:016x}",
        100.0 * hit_rate
    );
    if oracle_len > 0 {
        // The TCP path must agree with the local evaluation it mirrors.
        let served_prefix_sum = answers_checksum(
            queries[..oracle_len]
                .iter()
                .map(|&(s, t, l)| warm_arc.query(NodeId(s), NodeId(t), l.into())),
        );
        assert_eq!(
            served_prefix_sum, oracle_sum,
            "warm index diverged from oracle"
        );
    }

    // Warm-index latency floor — hardware-gated, measured always.
    let floor_us = 1000.0;
    let floor_enforced = hw >= 4 && !matches!(rc.scale, topology::Scale::Full);
    if floor_enforced {
        assert!(
            warm_p99_at_all_cores <= floor_us,
            "warm-index per-query p99 is {warm_p99_at_all_cores:.1}us, floor is {floor_us}us"
        );
    }

    // Chaos phase: 12 scripted fault epochs applied to a copy of the
    // index, each differentially checked against the exact oracle over
    // a fixed sample, then full recovery back to the clear state.
    let sched = chaos_schedule(g, brokers, rc.seed);
    let chaos_sample = queries.len().min(4000);
    let diff_sample = match rc.scale {
        topology::Scale::Tiny => 300,
        topology::Scale::Quarter => 150,
        topology::Scale::Full => 0,
    }
    .min(chaos_sample);
    let mut chaos_idx = (*warm_arc).clone();
    let mut chaos_rows = Vec::new();
    println!("  chaos: {} epochs over the index:", sched.horizon());
    for epoch in 1..=sched.horizon() {
        let state = sched.state_at(epoch);
        let report = chaos_idx.apply_state(g, &state, rc.threads);
        let sample_answers: Vec<_> = queries[..chaos_sample]
            .iter()
            .map(|&(s, t, l)| chaos_idx.query(NodeId(s), NodeId(t), l.into()))
            .collect();
        let hits = sample_answers.iter().filter(|a| a.is_some()).count();
        let hit_rate = hits as f64 / chaos_sample.max(1) as f64;
        let sample_sum = answers_checksum(sample_answers.iter().copied());
        let exact_sum = answers_checksum(
            queries[..diff_sample]
                .iter()
                .map(|&(s, t, l)| exact_query(g, brokers, &state, NodeId(s), NodeId(t), l.into())),
        );
        let index_diff_sum = answers_checksum(sample_answers[..diff_sample].iter().copied());
        assert_eq!(
            index_diff_sum, exact_sum,
            "epoch {epoch}: invalidated index diverges from the exact evaluation"
        );
        println!(
            "    epoch {epoch:>2}: rebuilt {:>3}, kept {:>3}, deactivated {}, reactivated {}, hit rate {:>6.2}%",
            report.rebuilt,
            report.kept,
            report.deactivated,
            report.reactivated,
            100.0 * hit_rate
        );
        chaos_rows.push(serde_json::json!({
            "epoch": epoch,
            "dirty": report.dirty,
            "rebuilt": report.rebuilt,
            "kept": report.kept,
            "deactivated": report.deactivated,
            "reactivated": report.reactivated,
            "hits": hits,
            "hit_rate": hit_rate,
            "sample_checksum": format!("{sample_sum:016x}"),
        }));
    }
    // Recovery: back at all-clear the answers must equal the pristine
    // index's over the whole canonical stream.
    chaos_idx.apply_state(g, &clear, rc.threads);
    let recovered_sum = answers_checksum(
        queries
            .iter()
            .map(|&(s, t, l)| chaos_idx.query(NodeId(s), NodeId(t), l.into())),
    );
    assert_eq!(
        recovered_sum, stream_sum,
        "index did not recover the clear-state answers after the chaos schedule"
    );
    println!(
        "  chaos recovery: clear-state answers restored, {} shards invalidated in total",
        chaos_idx.shards_invalidated()
    );

    // Deterministic subset for the golden snapshot (no timings).
    let chaos_payload = serde_json::json!({
        "epochs": sched.horizon(),
        "sample": chaos_sample,
        "diff_sample": diff_sample,
        "rows": chaos_rows,
        "shards_invalidated_total": chaos_idx.shards_invalidated(),
    });
    let deterministic = serde_json::json!({
        "nodes": n,
        "brokers": sel.len(),
        "max_l": MAX_L,
        "queries_per_sweep": queries.len(),
        "batch": BATCH,
        "hits": hits,
        "hit_rate": hit_rate,
        "stream_checksum": format!("{stream_sum:016x}"),
        "oracle_len": oracle_len,
        "oracle_checksum": format!("{oracle_sum:016x}"),
        "index_bytes": bytes.len(),
        "index_digest": format!("{:016x}", warm_arc.digest()),
        "chaos": chaos_payload,
    });

    let entry = serde_json::json!({
        "scale": format!("{:?}", rc.scale).to_lowercase(),
        "seed": rc.seed,
        "threads": rc.threads,
        "queries_total": queries_driven,
        "index_build_s": build_s,
        "index_load_s": load_s,
        "rows": rows,
        "warm_p99_floor": {
            "required_us": floor_us,
            "measured_us": warm_p99_at_all_cores,
            "enforced": floor_enforced,
            "hardware_threads": hw,
        },
        "deterministic": deterministic.clone(),
        "obs_enabled": netgraph::obs::enabled(),
        "wall_s_total": wall_start.elapsed().as_secs_f64(),
    });

    // Read-modify-write the scales array, like BENCH_engine.json.
    let path = std::path::Path::new("BENCH_serve.json");
    let mut scales: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|v| {
            v.get("scales")
                .and_then(|s| s.as_array().map(|a| a.to_vec()))
        })
        .unwrap_or_default();
    scales.retain(|s| s["scale"] != entry["scale"]);
    scales.push(entry.clone());
    scales.sort_by_key(|s| s["deterministic"]["nodes"].as_u64().unwrap_or(0));
    let doc = serde_json::json!({"id": "serve_bench", "scales": scales});
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_serve.json");
    println!("  wrote {}", path.display());
    rc.record("serve_bench", deterministic)
        .expect("--record write failed");
    rc.dump_obs("serve_bench").expect("--obs write failed");
}
