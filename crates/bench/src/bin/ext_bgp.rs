//! Extension experiment: how much BGP default traffic is already
//! supervised?
//!
//! The brokerage runs alongside BGP; traffic that is *not* shifted to
//! brokered routes still follows the BGP default path. This experiment
//! measures, per broker budget, the fraction of default (Gao–Rexford
//! preferred) paths that happen to be B-dominated already — supervision
//! the alliance gets for free — versus the fraction achievable by
//! actively stitching (the saturated connectivity).
//!
//! Usage: `ext_bgp [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::{max_subgraph_greedy, saturated_connectivity};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{bgp_paths_dominated, PolicyGraph};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: BGP",
        "share of default BGP paths already B-dominated",
    );

    let pg = PolicyGraph::new(&net);
    let run = max_subgraph_greedy(g, rc.budgets(n)[2]);

    // Sample AS destinations uniformly (IXPs are fabric, not endpoints).
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xb6b);
    let mut dests: Vec<NodeId> = g.nodes().filter(|&v| net.kind(v).is_as()).collect();
    dests.shuffle(&mut rng);
    dests.truncate(12);

    println!(
        "{:<8} {:<22} {:<22}",
        "k", "default paths dominated", "stitched (saturated)"
    );
    for &k in &rc.budgets(n) {
        let sel = run.truncated(k);
        let free = bgp_paths_dominated(&pg, sel.brokers(), &dests);
        let stitched = saturated_connectivity(g, sel.brokers()).fraction;
        println!("{:<8} {:<22} {:<22}", sel.len(), pct(free), pct(stitched));
    }
    println!(
        "\nreading: the gap between the columns is the traffic that must be\n\
         actively re-routed through the brokerage to gain supervision."
    );
}
