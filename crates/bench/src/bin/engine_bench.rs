//! Engine-layer speedup snapshot: arena-pooled vs allocating BFS,
//! sequential vs parallel exact l-hop evaluation, and the 64-lane
//! `netgraph::msbfs` kernel vs the historical one-BFS-per-source path.
//!
//! Writes `BENCH_engine.json` at the repo root (wall-clock medians plus
//! the derived speedups) so the numbers travel with the tree. Unlike the
//! criterion benches this runs in seconds and exercises `--threads`.
//!
//! ## Methodology
//!
//! Every timing is the **median of 3 (l-hop) or 5 (BFS sweep) runs** of
//! the same closure on a generated topology, measured with a monotonic
//! wall clock after a warm-up implied by topology generation and broker
//! selection. The msbfs-vs-per-source comparison times two
//! implementations of the *same* exact l-hop computation (`F_B(l)`,
//! `l ≤ 6`, every vertex a source, identical chunking through
//! `netgraph::par`):
//!
//! - **per-source** — the pre-msbfs evaluator, reproduced verbatim below
//!   (`per_source_curve`): one arena BFS per source over
//!   `DominatedView`, cumulative histogram per source;
//! - **msbfs** — `brokerset::lhop_curve_parallel`, which now batches 64
//!   sources into the bit lanes of a `u64` per adjacency pass.
//!
//! Both paths run at each thread count in {1, 2, 4, 0 = all cores}, one
//! JSON row per count, and the bin asserts their curves agree before
//! timing anything. The schema is additive over the previous snapshot:
//! old keys keep their meaning (`lhop_exact_*` now reflects the msbfs
//! evaluator, which is the shipping path).
//!
//! ## Cross-build identity witness
//!
//! `curve_checksum` in the JSON is an FNV-1a hash over the exact bit
//! patterns of the shipping curve (and the per-source reference counts).
//! Timings differ run to run, but this field must be identical between
//! a default build and a `--features obs` build of the same
//! scale/seed — the observability macros must not perturb results.
//!
//! Usage: `engine_bench [tiny|quarter|full] [seed] [--threads N]
//! [--obs PATH]`

use bench::{header, RunConfig};
use brokerset::{max_subgraph_greedy, SourceMode};
use netgraph::{par, with_arena, DominatedView, FullView, Graph, NodeId, NodeSet, TraversalArena};
use std::time::Instant;

/// FNV-1a over a stream of u64 values (fed little-endian byte-wise):
/// the deterministic fingerprint of a curve's exact bit patterns.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Median wall-clock seconds over `reps` runs of `f`.
fn median_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-msbfs exact l-hop evaluator, kept verbatim as the timing
/// baseline: one arena BFS per source, fanned out in the same
/// fixed-size chunks through the same deterministic executor.
fn per_source_curve(g: &Graph, brokers: &NodeSet, max_l: usize, threads: usize) -> Vec<u64> {
    let sources: Vec<NodeId> = g.nodes().collect();
    let parts = par::map_chunks(&sources, par::DEFAULT_CHUNK, threads, |chunk| {
        let view = DominatedView::new(g, brokers);
        let mut cum = vec![0u64; max_l];
        with_arena(|arena| {
            for &s in chunk {
                arena.run_bounded(view, s, max_l as u32);
                let hist = arena.distance_histogram(max_l + 1);
                let mut acc = 0u64;
                for (l, slot) in cum.iter_mut().enumerate() {
                    acc += hist[l + 1] as u64;
                    *slot += acc;
                }
            }
        });
        cum
    });
    let mut cum = vec![0u64; max_l];
    for part in parts {
        for (c, p) in cum.iter_mut().zip(part) {
            *c += p;
        }
    }
    cum
}

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("engine_bench", "traversal engine speedup snapshot");

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let threads = par::resolve_threads(rc.threads);
    const MAX_L: usize = 6;

    // BFS: pooled arena (steady state, zero allocation) vs a fresh arena
    // per run (what every deleted ad-hoc BFS used to pay).
    let sweep = 200.min(n);
    let mut arena = TraversalArena::with_capacity(n);
    let pooled = median_secs(5, || {
        for s in 0..sweep {
            arena.run(FullView::new(g), NodeId(s as u32));
        }
    });
    let fresh = median_secs(5, || {
        for s in 0..sweep {
            let mut a = TraversalArena::new();
            a.run(FullView::new(g), NodeId(s as u32));
        }
    });

    // Exact l-hop curve on the shipping (msbfs) path: the executor's
    // headline fan-out, sequential vs parallel.
    let seq = median_secs(3, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 1)
    });
    let par_s = median_secs(3, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, threads)
    });

    // msbfs vs per-source, one row per thread count. Correctness first:
    // both evaluators must produce the same curve.
    let reference = per_source_curve(g, sel.brokers(), MAX_L, 1);
    let denom = n as f64 * (n as f64 - 1.0);
    let reference_fractions: Vec<f64> = reference.iter().map(|&c| c as f64 / denom).collect();
    let shipping = brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 1);
    assert_eq!(
        shipping.fractions, reference_fractions,
        "msbfs l-hop curve diverged from the per-source reference"
    );
    // Bit-identity across thread counts, and the cross-build witness:
    // the checksum must not change between feature-on and feature-off
    // builds of the same scale/seed (see the module docs).
    let parallel = brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 0);
    assert_eq!(
        shipping.fractions, parallel.fractions,
        "l-hop curve is thread-count dependent"
    );
    let curve_checksum = fnv1a(
        shipping
            .fractions
            .iter()
            .map(|f| f.to_bits())
            .chain(reference.iter().copied()),
    );
    println!("  curve_checksum: {curve_checksum:016x} (must match across obs on/off builds)");

    let mut rows = Vec::new();
    println!("  exact l-hop, msbfs vs per-source (max_l = {MAX_L}, {n} sources):");
    for &t in &[1usize, 2, 4, 0] {
        let resolved = par::resolve_threads(t);
        let per_source = median_secs(3, || per_source_curve(g, sel.brokers(), MAX_L, t));
        let msbfs = median_secs(3, || {
            brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, t)
        });
        let speedup = per_source / msbfs;
        println!(
            "    threads {t} ({resolved:2} workers)  per-source {per_source:.4}s  msbfs {msbfs:.4}s  speedup {speedup:.2}x"
        );
        rows.push(serde_json::json!({
            "threads": t,
            "threads_resolved": resolved,
            "lhop_per_source_s": per_source,
            "lhop_msbfs_s": msbfs,
            "msbfs_speedup": speedup,
        }));
    }
    let msbfs_par_speedup = rows
        .iter()
        .find(|r| r["threads"] == 0)
        .map(|r| r["msbfs_speedup"].as_f64().unwrap_or(0.0))
        .unwrap_or(0.0);

    let bfs_speedup = fresh / pooled;
    let lhop_speedup = seq / par_s;
    println!("  bfs {sweep}-source sweep   pooled {pooled:.4}s  fresh {fresh:.4}s  speedup {bfs_speedup:.2}x");
    println!("  exact l-hop curve     seq {seq:.4}s  par({threads}) {par_s:.4}s  speedup {lhop_speedup:.2}x");

    let data = serde_json::json!({
        "nodes": n,
        "brokers": sel.len(),
        "threads": threads,
        "bfs_sweep_sources": sweep,
        "bfs_pooled_s": pooled,
        "bfs_fresh_s": fresh,
        "bfs_pooled_speedup": bfs_speedup,
        "lhop_exact_seq_s": seq,
        "lhop_exact_par_s": par_s,
        "lhop_parallel_speedup": lhop_speedup,
        "lhop_rows": rows,
        "msbfs_vs_per_source_par_speedup": msbfs_par_speedup,
        "curve_checksum": format!("{curve_checksum:016x}"),
        "obs_enabled": netgraph::obs::enabled(),
    });
    let record = bench::ExperimentRecord::new("engine_bench", &rc, data);
    let json = serde_json::to_string_pretty(&record).expect("serialize bench record");
    let path = std::path::Path::new("BENCH_engine.json");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("  wrote {}", path.display());
    rc.dump_obs("engine_bench").expect("--obs write failed");
}
