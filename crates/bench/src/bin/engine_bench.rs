//! Engine-layer speedup snapshot: arena-pooled vs allocating BFS and
//! sequential vs parallel exact l-hop evaluation.
//!
//! Writes `BENCH_engine.json` at the repo root (wall-clock medians plus
//! the derived speedups) so the numbers travel with the tree. Unlike the
//! criterion benches this runs in seconds and exercises `--threads`.
//!
//! Usage: `engine_bench [tiny|quarter|full] [seed] [--threads N]`

use bench::{header, RunConfig};
use brokerset::{max_subgraph_greedy, SourceMode};
use netgraph::{FullView, NodeId, TraversalArena};
use std::time::Instant;

/// Median wall-clock seconds over `reps` runs of `f`.
fn median_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header("engine_bench", "traversal engine speedup snapshot");

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let threads = netgraph::par::resolve_threads(rc.threads);

    // BFS: pooled arena (steady state, zero allocation) vs a fresh arena
    // per run (what every deleted ad-hoc BFS used to pay).
    let sweep = 200.min(n);
    let mut arena = TraversalArena::with_capacity(n);
    let pooled = median_secs(5, || {
        for s in 0..sweep {
            arena.run(FullView::new(g), NodeId(s as u32));
        }
    });
    let fresh = median_secs(5, || {
        for s in 0..sweep {
            let mut a = TraversalArena::new();
            a.run(FullView::new(g), NodeId(s as u32));
        }
    });

    // Exact l-hop curve: the executor's headline fan-out.
    let seq = median_secs(3, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), 6, SourceMode::Exact, 1)
    });
    let par = median_secs(3, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), 6, SourceMode::Exact, threads)
    });

    let bfs_speedup = fresh / pooled;
    let lhop_speedup = seq / par;
    println!("  bfs {sweep}-source sweep   pooled {pooled:.4}s  fresh {fresh:.4}s  speedup {bfs_speedup:.2}x");
    println!("  exact l-hop curve     seq {seq:.4}s  par({threads}) {par:.4}s  speedup {lhop_speedup:.2}x");

    let data = serde_json::json!({
        "nodes": n,
        "brokers": sel.len(),
        "threads": threads,
        "bfs_sweep_sources": sweep,
        "bfs_pooled_s": pooled,
        "bfs_fresh_s": fresh,
        "bfs_pooled_speedup": bfs_speedup,
        "lhop_exact_seq_s": seq,
        "lhop_exact_par_s": par,
        "lhop_parallel_speedup": lhop_speedup,
    });
    let record = bench::ExperimentRecord::new("engine_bench", &rc, data);
    let json = serde_json::to_string_pretty(&record).expect("serialize bench record");
    let path = std::path::Path::new("BENCH_engine.json");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("  wrote {}", path.display());
}
