//! Engine-layer speedup snapshot: arena-pooled vs allocating BFS,
//! sequential vs parallel exact l-hop evaluation, the 64-lane
//! `netgraph::msbfs` kernel vs the historical one-BFS-per-source path,
//! and the permuted (cache-aware) vs original CSR layout.
//!
//! Maintains `BENCH_engine.json` at the repo root as a **`scales`
//! array**: each invocation measures one scale (tiny, quarter or full —
//! 52,079 nodes) and replaces that scale's entry, leaving the others in
//! place, so the file accumulates the whole sweep:
//!
//! ```sh
//! cargo run --release -p bench --bin engine_bench -- --scale tiny
//! cargo run --release -p bench --bin engine_bench -- --scale quarter
//! cargo run --release -p bench --bin engine_bench -- --scale full
//! ```
//!
//! ## Methodology
//!
//! Every timing is a **median over repeated runs** (3 at tiny/quarter, 1
//! at full, where a single exact sweep is already seconds) of the same
//! closure on a generated topology, measured with a monotonic wall
//! clock. The msbfs-vs-per-source comparison times two implementations
//! of the *same* l-hop computation over the *same* source list:
//!
//! - **per-source** — the pre-msbfs evaluator, reproduced verbatim below
//!   (`per_source_curve`): one arena BFS per source over
//!   `DominatedView`, cumulative histogram per source;
//! - **msbfs** — `brokerset::lhop_curve_parallel`, which batches 64
//!   sources into the bit lanes of a `u64` per adjacency pass and fans
//!   whole lane batches out on the persistent worker pool.
//!
//! At tiny scale the comparison is exact (every vertex a source); at
//! quarter/full it uses a fixed sampled source list so the deliberately
//! slow per-source baseline stays affordable — the *shipping* exact
//! curve is still timed separately (`lhop_exact_*`).
//!
//! Both paths run at each thread count in {1, 2, 4, 7, 0 = all cores},
//! one JSON row per count with the **resolved** worker count
//! (`threads_resolved`), and `lhop_parallel_speedup` is reported against
//! that resolved count — a 1.0x on a 1-core runner is the hardware's
//! fault, not a regression, which is why the acceptance floors below are
//! enforced only when the hardware can express them.
//!
//! ## Acceptance floors
//!
//! - quarter: >= 4x threaded exact l-hop speedup at 7 threads, enforced
//!   (hard assert) when the host resolves >= 7 hardware threads;
//! - full: exact shipping curve in single-digit seconds at `--threads
//!   0`, enforced when the host resolves >= 4 hardware threads.
//!
//! Unenforced floors still record their measured value under
//! `speedup_floor` so a capable machine can audit any run.
//!
//! ## Cross-build identity witness
//!
//! `curve_checksum` is an FNV-1a hash over the exact bit patterns of the
//! shipping curve (and the per-source reference counts). The bin asserts
//! it is identical across thread counts 1/2/4/7 **and** across the
//! permuted vs original CSR layout; it must also match between a default
//! build and a `--features obs` build of the same scale/seed — the
//! observability macros must not perturb results.
//!
//! Usage: `engine_bench [tiny|quarter|full] [seed] [--scale S]
//! [--threads N] [--obs PATH] [--record DIR]` (`--scale` overrides the
//! positional scale).

use bench::{header, ArgExtras, RunConfig};
use brokerset::{max_subgraph_greedy, SourceMode};
use netgraph::{par, with_arena, DominatedView, FullView, Graph, NodeId, NodeSet, TraversalArena};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// FNV-1a over a stream of u64 values (fed little-endian byte-wise):
/// the deterministic fingerprint of a curve's exact bit patterns.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Median wall-clock seconds over `reps` runs of `f`.
fn median_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The source list a `SourceMode` resolves to — mirrors the evaluator's
/// own sampling (seeded shuffle, truncate) so the per-source baseline
/// and the msbfs path compare over identical sources.
fn sources_for(g: &Graph, mode: SourceMode) -> Vec<NodeId> {
    let n = g.node_count();
    match mode {
        SourceMode::Exact => g.nodes().collect(),
        SourceMode::Sampled { count, seed } => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut all: Vec<NodeId> = g.nodes().collect();
            all.shuffle(&mut rng);
            all.truncate(count.max(1).min(n));
            all
        }
    }
}

/// The pre-msbfs exact l-hop evaluator, kept verbatim as the timing
/// baseline: one arena BFS per source, fanned out in the same
/// fixed-size chunks through the same deterministic executor.
fn per_source_curve(
    g: &Graph,
    brokers: &NodeSet,
    max_l: usize,
    sources: &[NodeId],
    threads: usize,
) -> Vec<u64> {
    let g_owned = g.clone();
    let brokers_owned = brokers.clone();
    let parts = par::map_chunks(sources, par::DEFAULT_CHUNK, threads, move |chunk| {
        let view = DominatedView::new(&g_owned, &brokers_owned);
        let mut cum = vec![0u64; max_l];
        with_arena(|arena| {
            for &s in chunk {
                arena.run_bounded(view, s, max_l as u32);
                let hist = arena.distance_histogram(max_l + 1);
                let mut acc = 0u64;
                for (l, slot) in cum.iter_mut().enumerate() {
                    acc += hist[l + 1] as u64;
                    *slot += acc;
                }
            }
        });
        cum
    });
    let mut cum = vec![0u64; max_l];
    for part in parts {
        for (c, p) in cum.iter_mut().zip(part) {
            *c += p;
        }
    }
    cum
}

fn main() {
    let (rc, extras) = RunConfig::from_args_extended(
        ArgExtras {
            value_flags: &["--scale"],
            max_positionals: 0,
        },
        " [--scale tiny|quarter|full]",
    );
    let mut rc = rc;
    if let Some(s) = extras.flag("--scale") {
        rc.scale = match s {
            "tiny" => topology::Scale::Tiny,
            "quarter" => topology::Scale::Quarter,
            "full" => topology::Scale::Full,
            other => {
                eprintln!("error: unknown --scale '{other}' (expected tiny|quarter|full)");
                std::process::exit(2);
            }
        };
    }
    let wall_start = Instant::now();
    let t0 = Instant::now();
    let net = rc.internet();
    let generated_s = t0.elapsed().as_secs_f64();
    let g = net.graph();
    let n = g.node_count();
    header("engine_bench", "traversal engine speedup snapshot");

    let t0 = Instant::now();
    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let select_s = t0.elapsed().as_secs_f64();
    let threads = par::resolve_threads(rc.threads);
    let hw = par::resolve_threads(0);
    const MAX_L: usize = 6;
    let scale_name = format!("{:?}", rc.scale).to_lowercase();
    let reps = match rc.scale {
        topology::Scale::Tiny | topology::Scale::Quarter => 3,
        topology::Scale::Full => 1,
    };

    // BFS: pooled arena (steady state, zero allocation) vs a fresh arena
    // per run (what every deleted ad-hoc BFS used to pay).
    let sweep = 200.min(n);
    let mut arena = TraversalArena::with_capacity(n);
    let pooled = median_secs(5, || {
        for s in 0..sweep {
            arena.run(FullView::new(g), NodeId(s as u32));
        }
    });
    let fresh = median_secs(5, || {
        for s in 0..sweep {
            let mut a = TraversalArena::new();
            a.run(FullView::new(g), NodeId(s as u32));
        }
    });

    // Exact l-hop curve on the shipping (msbfs) path: the executor's
    // headline fan-out. Timed sequential, at the requested thread count,
    // and at 7 threads (the quarter-scale acceptance point).
    let seq = median_secs(reps, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 1)
    });
    let par_s = median_secs(reps, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, threads)
    });
    let par7_s = median_secs(reps, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 7)
    });
    let lhop_speedup = seq / par_s;
    let speedup_at_7 = seq / par7_s;

    // msbfs vs per-source over identical sources: exact at tiny, a fixed
    // sampled list at quarter/full (the per-source baseline exists to be
    // slow; sampling keeps the comparison affordable at 52k nodes).
    let cmp_mode = match rc.scale {
        topology::Scale::Tiny => SourceMode::Exact,
        topology::Scale::Quarter => SourceMode::Sampled {
            count: 1024,
            seed: rc.seed ^ 0xbe_ac41,
        },
        topology::Scale::Full => SourceMode::Sampled {
            count: 512,
            seed: rc.seed ^ 0xbe_ac41,
        },
    };
    let cmp_sources = sources_for(g, cmp_mode);

    // Correctness before timing: both evaluators must produce the same
    // curve over the comparison sources.
    let reference = per_source_curve(g, sel.brokers(), MAX_L, &cmp_sources, 1);
    let denom = cmp_sources.len() as f64 * (n as f64 - 1.0);
    let reference_fractions: Vec<f64> = reference.iter().map(|&c| c as f64 / denom).collect();
    let shipping = brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, cmp_mode, 1);
    assert_eq!(
        shipping.fractions, reference_fractions,
        "msbfs l-hop curve diverged from the per-source reference"
    );

    // Bit-identity across thread counts 1/2/4/7 (and the requested
    // count), pinned on the exact shipping curve.
    let exact_base = brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 1);
    for t in [2usize, 4, 7, rc.threads] {
        let got = brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, t);
        assert_eq!(
            exact_base.fractions, got.fractions,
            "l-hop curve is thread-count dependent (threads = {t})"
        );
    }

    // Cache-aware layout: the same evaluation on the degree-descending
    // permuted CSR with the broker set mapped into the permuted id
    // space. Aggregate coverage is label-invariant, so the curve must be
    // bit-identical; timing shows what the layout buys.
    let t0 = Instant::now();
    let perm = g.permute_by_degree();
    let permute_s = t0.elapsed().as_secs_f64();
    let brokers_new = perm.map_set(sel.brokers());
    let permuted_curve =
        brokerset::lhop_curve_parallel(perm.graph(), &brokers_new, MAX_L, SourceMode::Exact, 1);
    assert_eq!(
        exact_base.fractions, permuted_curve.fractions,
        "permuted CSR layout changed the exact l-hop curve"
    );
    let lhop_original = median_secs(reps, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, threads)
    });
    let lhop_permuted = median_secs(reps, || {
        brokerset::lhop_curve_parallel(
            perm.graph(),
            &brokers_new,
            MAX_L,
            SourceMode::Exact,
            threads,
        )
    });
    let curve_checksum = fnv1a(
        exact_base
            .fractions
            .iter()
            .map(|f| f.to_bits())
            .chain(reference.iter().copied()),
    );
    let permuted_checksum = fnv1a(
        permuted_curve
            .fractions
            .iter()
            .map(|f| f.to_bits())
            .chain(reference.iter().copied()),
    );
    assert_eq!(
        curve_checksum, permuted_checksum,
        "curve_checksum differs between CSR layouts"
    );
    println!("  curve_checksum: {curve_checksum:016x} (must match across threads, layouts and obs on/off builds)");
    let layout_rows = serde_json::json!([
        {"layout": "original", "lhop_exact_s": lhop_original, "curve_checksum": format!("{curve_checksum:016x}")},
        {"layout": "permuted", "lhop_exact_s": lhop_permuted, "curve_checksum": format!("{permuted_checksum:016x}"),
         "permute_build_s": permute_s},
    ]);
    println!(
        "  layout: original {lhop_original:.4}s  permuted {lhop_permuted:.4}s  ({:.2}x)",
        lhop_original / lhop_permuted
    );

    let mut rows = Vec::new();
    println!(
        "  l-hop, msbfs vs per-source (max_l = {MAX_L}, {} sources):",
        cmp_sources.len()
    );
    for &t in &[1usize, 2, 4, 7, 0] {
        let resolved = par::resolve_threads(t);
        let per_source = median_secs(reps, || {
            per_source_curve(g, sel.brokers(), MAX_L, &cmp_sources, t)
        });
        let msbfs = median_secs(reps, || {
            brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, cmp_mode, t)
        });
        let speedup = per_source / msbfs;
        println!(
            "    threads {t} ({resolved:2} workers)  per-source {per_source:.4}s  msbfs {msbfs:.4}s  speedup {speedup:.2}x"
        );
        rows.push(serde_json::json!({
            "threads": t,
            "threads_resolved": resolved,
            "lhop_per_source_s": per_source,
            "lhop_msbfs_s": msbfs,
            "msbfs_speedup": speedup,
        }));
    }
    let msbfs_par_speedup = rows
        .iter()
        .find(|r| r["threads"] == 0)
        .map(|r| r["msbfs_speedup"].as_f64().unwrap_or(0.0))
        .unwrap_or(0.0);

    // Acceptance floors, enforced only where the hardware can express
    // them (a 1-core runner cannot show a 4x threaded speedup; its
    // honest numbers are still recorded).
    let quarter_floor_enforced = matches!(rc.scale, topology::Scale::Quarter) && hw >= 7;
    if quarter_floor_enforced {
        assert!(
            speedup_at_7 >= 4.0,
            "quarter-scale exact l-hop speedup at 7 threads is {speedup_at_7:.2}x, floor is 4x"
        );
    }
    let full_floor_enforced = matches!(rc.scale, topology::Scale::Full) && hw >= 4;
    let full_exact_s = median_secs(reps, || {
        brokerset::lhop_curve_parallel(g, sel.brokers(), MAX_L, SourceMode::Exact, 0)
    });
    if full_floor_enforced {
        assert!(
            full_exact_s < 10.0,
            "full-scale exact l-hop curve took {full_exact_s:.2}s, floor is single-digit seconds"
        );
    }
    let speedup_floor = serde_json::json!({
        "quarter_speedup_at_7_required": 4.0,
        "quarter_speedup_at_7_measured": speedup_at_7,
        "quarter_floor_enforced": quarter_floor_enforced,
        "full_exact_seconds_required": 10.0,
        "full_exact_seconds_measured": full_exact_s,
        "full_floor_enforced": full_floor_enforced,
        "hardware_threads": hw,
    });

    let bfs_speedup = fresh / pooled;
    println!("  bfs {sweep}-source sweep   pooled {pooled:.4}s  fresh {fresh:.4}s  speedup {bfs_speedup:.2}x");
    println!(
        "  exact l-hop curve     seq {seq:.4}s  par({threads}) {par_s:.4}s  speedup {lhop_speedup:.2}x  at-7 {speedup_at_7:.2}x"
    );

    let entry = serde_json::json!({
        "scale": scale_name.as_str(),
        "seed": rc.seed,
        "nodes": n,
        "brokers": sel.len(),
        "threads": rc.threads,
        "threads_resolved": threads,
        "generated_s": generated_s,
        "select_s": select_s,
        "bfs_sweep_sources": sweep,
        "bfs_pooled_s": pooled,
        "bfs_fresh_s": fresh,
        "bfs_pooled_speedup": bfs_speedup,
        "lhop_exact_seq_s": seq,
        "lhop_exact_par_s": par_s,
        "lhop_exact_par7_s": par7_s,
        "lhop_exact_allcores_s": full_exact_s,
        "lhop_parallel_speedup": lhop_speedup,
        "lhop_speedup_at_7": speedup_at_7,
        "speedup_floor": speedup_floor,
        "compare_sources": cmp_sources.len(),
        "lhop_rows": rows,
        "layout_rows": layout_rows,
        "msbfs_vs_per_source_par_speedup": msbfs_par_speedup,
        "curve_checksum": format!("{curve_checksum:016x}"),
        "obs_enabled": netgraph::obs::enabled(),
        "wall_s_total": wall_start.elapsed().as_secs_f64(),
    });

    // Read-modify-write the scales array: replace this scale's entry,
    // keep the others, order by node count.
    let path = std::path::Path::new("BENCH_engine.json");
    let mut scales: Vec<serde_json::Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|v| {
            v.get("scales")
                .and_then(|s| s.as_array().map(|a| a.to_vec()))
        })
        .unwrap_or_default();
    scales.retain(|s| s["scale"] != scale_name.as_str());
    scales.push(entry.clone());
    scales.sort_by_key(|s| s["nodes"].as_u64().unwrap_or(0));
    let doc = serde_json::json!({
        "id": "engine_bench",
        "scales": scales,
    });
    let json = serde_json::to_string_pretty(&doc).expect("serialize bench record");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!(
        "  wrote {} ({} scale entries)",
        path.display(),
        doc["scales"].as_array().map_or(0, |a| a.len())
    );
    rc.record("engine_bench", entry)
        .expect("--record write failed");
    rc.dump_obs("engine_bench").expect("--obs write failed");
}
