//! Table 5: example brokers and their rankings.
//!
//! The top of the MaxSG selection interleaves IXPs and big transit
//! providers, with content/enterprise ASes appearing in the tail — the
//! paper's "diversified composition". Names are synthetic (the real
//! dataset's AS names are not reproducible), the *shape* of the table is.
//!
//! Usage: `table5 [tiny|quarter|full] [seed]`

use bench::{header, RunConfig};
use brokerset::{max_subgraph_greedy, ranked_brokers};
use topology::NodeKind;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    header("Table 5", "example brokers and their rankings");

    let k = rc.budgets(g.node_count())[2];
    let sel = max_subgraph_greedy(g, k);
    let rows = ranked_brokers(&net, &sel);

    println!("{:<6} {:<5} {:<26} {:<8}", "rank", "type", "name", "degree");
    for row in rows.iter().take(10) {
        println!(
            "{:<6} {:<5} {:<26} {:<8}",
            row.rank, row.category, row.name, row.degree
        );
    }
    // The paper's table also shows tail entries (content/enterprise at
    // ranks 232+): print the first content and enterprise brokers.
    for kind in [NodeKind::Content, NodeKind::Enterprise] {
        if let Some(row) = rows.iter().find(|r| r.kind == kind) {
            println!(
                "{:<6} {:<5} {:<26} {:<8}",
                row.rank, row.category, row.name, row.degree
            );
        }
    }
    let n_ixp_top20 = rows
        .iter()
        .take(20)
        .filter(|r| r.kind == NodeKind::Ixp)
        .count();
    println!(
        "\nIXPs among the top 20 brokers: {n_ixp_top20} (paper: 4 of its top 9\n\
         are IXPs — exchanges matter for B-dominating routing)"
    );
}
