//! Extension experiment: topology-derived economics and the "proper size
//! of B".
//!
//! Derives the Stackelberg customer population from the generated
//! topology (tiers + degrees), then sweeps the alliance size: equilibrium
//! profit scales with the coverage the alliance can sell, while the
//! marginal member's contribution shrinks — locating the size where
//! growing the coalition stops paying (the paper's Section 7.2 closing
//! insight).
//!
//! Usage: `ext_econ [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use broker_net::econbridge::{game_from_topology, BridgeConfig};
use brokerset::{max_subgraph_greedy, saturated_connectivity};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: economics",
        "topology-derived pricing game vs alliance size",
    );

    let run = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let cfg = BridgeConfig::default();

    println!(
        "{:<8} {:<12} {:<10} {:<12} {:<14}",
        "k", "coverage", "p_B*", "adoption", "profit x cov"
    );
    let mut prev_scaled = 0.0f64;
    for frac in [0.0019, 0.005, 0.019, 0.04, 0.068] {
        let k = ((n as f64 * frac).round() as usize).max(1);
        let sel = run.truncated(k);
        let cov = saturated_connectivity(g, sel.brokers()).fraction;
        let game = game_from_topology(&net, sel.brokers(), &cfg);
        let eq = game.equilibrium().expect("equilibrium exists");
        // The product the alliance can actually sell scales with the
        // pairs it can supervise.
        let scaled_profit = eq.leader_utility * cov;
        println!(
            "{:<8} {:<12} {:<10.3} {:<12} {:<14.1}{}",
            sel.len(),
            pct(cov),
            eq.price,
            pct(eq.total_adoption / game.customers.len() as f64),
            scaled_profit,
            if scaled_profit > prev_scaled {
                ""
            } else {
                "   <- marginal value exhausted"
            }
        );
        prev_scaled = scaled_profit;
    }
    println!(
        "\nreading: coverage-scaled profit grows steeply while coverage does\n\
         (network externality / supermodular regime) and flattens with it —\n\
         'that's the time to stop increasing the set size' (Section 7.2)."
    );
}
