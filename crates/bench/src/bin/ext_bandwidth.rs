//! Extension experiment: bandwidth brokering under load.
//!
//! The alliance plays the bandwidth-broker role end-to-end: per-edge
//! capacities by tier, arriving demands admitted only over dominating
//! paths with residual capacity (one retry around saturated links).
//! Sweeps the offered load and prints the admission/carried curves.
//!
//! Usage: `ext_bandwidth [tiny|quarter|full] [seed]`

use bench::{header, pct, RunConfig};
use brokerset::max_subgraph_greedy;
use netgraph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{admit_demands, CapacityModel, Demand};

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: bandwidth",
        "capacity-aware admission over dominating paths",
    );

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let cap = CapacityModel::sample(&net, rc.seed ^ 0xcab);

    println!(
        "{:<12} {:<12} {:<14} {:<10}",
        "per-demand", "admitted", "carried/req", "detours"
    );
    for bw in [0.05, 0.5, 2.0, 5.0, 10.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0xdead);
        // Hot-spot traffic: most demands converge on a handful of popular
        // destinations (CDN-like), which is what actually stresses the
        // access links.
        let hot: Vec<NodeId> = (0..10)
            .map(|_| NodeId(rng.gen_range(0..n as u32)))
            .collect();
        let demands: Vec<Demand> = (0..2500)
            .map(|i| Demand {
                src: NodeId(rng.gen_range(0..n as u32)),
                dst: hot[i % hot.len()],
                bandwidth: bw,
            })
            .filter(|d| d.src != d.dst)
            .collect();
        let rep = admit_demands(g, sel.brokers(), &cap, &demands);
        println!(
            "{:<12} {:<12} {:<14} {:<10}",
            bw,
            pct(rep.admission_ratio()),
            pct(rep.carried / rep.requested.max(1e-9)),
            rep.detoured
        );
    }
    println!(
        "\nreading: admission stays near the dominated-reachability ceiling\n\
         until per-demand bandwidth approaches access-link capacity (10),\n\
         then the brokerage starts detouring and finally rejecting."
    );
}
