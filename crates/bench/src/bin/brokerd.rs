//! `brokerd` — the query-plane daemon: serves hop-bounded stitch
//! queries from a [`brokerset::ReachIndex`] over the length-prefixed
//! binary protocol in [`broker_net::proto`] (`HELLO` / `QUERY` /
//! `BATCH` / `STATS` / `SHUTDOWN`; see `DESIGN.md` §10).
//!
//! ```sh
//! # Build the index in-process from the scaled synthetic topology:
//! cargo run --release -p bench --bin brokerd -- tiny 7 --port 0
//! # Or serve a prebuilt BRI1 blob (see `broker_cli index build`):
//! cargo run --release -p bench --bin brokerd -- --index idx.bri --port 7700
//! ```
//!
//! With `--port 0` (the default) the kernel picks an ephemeral port;
//! the daemon always announces the bound port on stdout as
//!
//! ```text
//! brokerd: listening on 127.0.0.1:<port>
//! ```
//!
//! which is the line scripts (`ci.sh`'s serve smoke, the golden-session
//! test) parse to find it. The announcement precedes the index build:
//! early clients queue in the TCP backlog and their blocking HELLO
//! read doubles as the readiness signal (see
//! [`broker_net::proto::Conn::handshake`]), so no caller ever needs a
//! fixed startup delay. Connections are served one thread each;
//! batch frames inside a connection fan out on the persistent
//! `netgraph::par` worker pool at `--threads N`. A `SHUTDOWN` frame
//! from any client stops the accept loop and exits cleanly after
//! printing the serving counters.

use bench::{ArgExtras, RunConfig};
use broker_net::proto::{self, ServeCounters};
use brokerset::{max_subgraph_greedy, ReachIndex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hop cap baked into in-process builds — matches the paper's l <= 6
/// evaluation horizon (and `serve_bench`, so checksums line up).
const MAX_L: usize = 6;

fn main() {
    let (rc, _) = RunConfig::from_args_extended(ArgExtras::default(), "");

    // Bind BEFORE building the index so the port announcement is
    // immediate and scripts never wait out the build behind a sleep
    // loop. Clients that connect early queue in the TCP backlog; their
    // blocking HELLO read IS the readiness signal — it returns exactly
    // when the accept loop (below, after the build) starts serving.
    let listener = proto::Listener::bind(rc.port.unwrap_or(0)).expect("bind listener");
    let port = listener.port().expect("bound port");
    println!("brokerd: listening on 127.0.0.1:{port}");

    let t0 = Instant::now();
    let index = match &rc.index {
        Some(path) => match ReachIndex::load(path) {
            Ok(idx) => {
                println!("brokerd: loaded index from {}", path.display());
                idx
            }
            Err(e) => {
                eprintln!("error: loading index {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => {
            let net = rc.internet();
            let g = net.graph();
            let budget = rc.budgets(g.node_count())[1];
            let sel = max_subgraph_greedy(g, budget);
            ReachIndex::build(g, sel.brokers(), MAX_L, rc.threads)
        }
    };
    println!(
        "brokerd: index ready in {:.2}s ({} nodes, {} brokers, max_l {}, epoch {})",
        t0.elapsed().as_secs_f64(),
        index.node_count(),
        index.broker_count(),
        index.max_l(),
        index.epoch()
    );

    let index = Arc::new(index);
    let counters = Arc::new(ServeCounters::new());

    // SHUTDOWN protocol: the connection thread that receives the frame
    // raises the stop flag, then opens a throwaway connection to wake
    // the accept loop out of its blocking accept.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("brokerd: accept failed: {e}");
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let index = Arc::clone(&index);
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&stop);
        let threads = rc.threads;
        workers.push(std::thread::spawn(move || {
            match proto::serve(conn, &index, &counters, threads) {
                Ok(true) => {
                    stop.store(true, Ordering::SeqCst);
                    // The wakeup connect must not be a single best-effort
                    // attempt: if it fails transiently the accept loop
                    // blocks forever and `wait brokerd` hangs the caller.
                    let _ = proto::Conn::connect_retry(port, 32);
                }
                Ok(false) => {}
                Err(e) => eprintln!("brokerd: connection error: {e}"),
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let stats = counters.snapshot(&index);
    println!(
        "brokerd: bye ({} queries, {} hits, {} batch frames)",
        stats.queries_served, stats.hits, stats.batches
    );
    rc.dump_obs("brokerd").expect("--obs write failed");
}
