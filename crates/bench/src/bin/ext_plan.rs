//! Extension experiment: dependency-DAG reconfiguration planning — the
//! chaos-recovery timeline replayed as certificate-checked plans.
//!
//! The scripted broker defection/recovery schedule of `ext_chaos` is
//! handed to [`routing::plan_recovery`]: every broker-set change becomes
//! a [`routing::ReconfigPlan`] whose atomic steps (activate, deactivate,
//! migrate session) are ordered by a dependency DAG. Edge A -> B means
//! B's intermediate state is only invariant-safe after A; the planner
//! derives edges by checking candidate intermediate states against the
//! same `Validate` certificates the steady-state pipeline uses.
//!
//! Per transition the bin audits the [`routing::PlanCertificate`]
//! (acyclicity, step set == config diff, every topological cut state
//! invariant-safe), then executes the plan in antichains on the
//! persistent worker pool at 1, 2, 4 and 7 threads; the execution trace
//! checksum must be bit-identical at every thread count. The modeled
//! makespan (critical-path cost units) is compared with sequential
//! execution and the aggregate speedup must clear [`SPEEDUP_FLOOR`] at
//! quarter scale and above.
//!
//! Writes `BENCH_plan.json` at the repo root (DAG shape, makespan
//! model, wall-clock execution sweep) for quarter/full runs; tiny runs
//! keep only the `--record` snapshot, which contains no timings and is
//! therefore bit-stable — it backs the golden test.
//!
//! Usage: `ext_plan [tiny|quarter|full] [seed] [--threads N]
//! [--obs PATH] [--record DIR]`

use bench::{header, RunConfig};
use brokerset::max_subgraph_greedy;
use netgraph::{FaultSchedule, NodeId, Validate};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::plan_recovery;
use std::time::Instant;
use topology::Scale;

/// Fault-timeline length: defection waves, then staged recovery.
const HORIZON: u32 = 8;
/// Minimum planned-vs-sequential makespan speedup (modeled cost units),
/// asserted at quarter scale and above.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Thread counts for the bit-identity sweep.
const THREADS: [usize; 4] = [1, 2, 4, 7];

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: plan",
        "dependency-DAG reconfiguration with certified cuts",
    );

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);

    // The recovery scenario: 40% of the brokers defect in four staged
    // waves, then return in two; every set change is a transition the
    // planner must sequence safely.
    let mut schedule = FaultSchedule::new(n);
    let batch = (sel.len() / 10).max(1);
    let defectors: Vec<NodeId> = sel.order().iter().copied().take(4 * batch).collect();
    for (i, chunk) in defectors.chunks(batch).enumerate() {
        for &b in chunk {
            schedule.fail_broker(i as u32 + 1, b);
        }
    }
    for (i, chunk) in defectors.chunks(2 * batch).enumerate() {
        for &b in chunk {
            schedule.recover_broker(i as u32 + 6, b);
        }
    }
    schedule.set_horizon(HORIZON);

    let session_pairs = if matches!(rc.scale, Scale::Tiny) {
        24
    } else {
        96
    };
    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x91a);
    let mut pairs = Vec::with_capacity(session_pairs);
    while pairs.len() < session_pairs {
        let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
        if u != v {
            pairs.push((NodeId(u), NodeId(v)));
        }
    }
    println!(
        "scenario: {} brokers, {} defect in waves of {batch}; {} supervised sessions;\n\
         horizon {HORIZON} epochs\n",
        sel.len(),
        defectors.len(),
        pairs.len(),
    );

    let t0 = Instant::now();
    let transitions = plan_recovery(g, sel.brokers(), &schedule, &pairs).expect("plans build");
    let build_s = t0.elapsed().as_secs_f64();

    println!(
        "{:<7} {:<7} {:<7} {:<7} {:<7} {:<10} {:<10} {:<8}",
        "epoch", "steps", "edges", "width", "depth", "makespan", "seq", "speedup"
    );
    let mut rows = Vec::with_capacity(transitions.len());
    let mut cert_checks = 0usize;
    let mut cuts_validated = 0usize;
    let mut agg_steps = 0usize;
    let mut agg_width = 0usize;
    let mut agg_depth = 0usize;
    let mut agg_seq = 0u64;
    let mut agg_makespan = 0u64;
    // One fold per thread count; all four must land on the same value.
    let mut sweep: Vec<u64> = vec![0xcbf29ce484222325; THREADS.len()];
    let mut exec_s = vec![0.0f64; THREADS.len()];
    for t in &transitions {
        let cert = t.plan.certificate(g).audit();
        assert!(cert.is_ok(), "plan certificate (epoch {}): {cert}", t.epoch);
        cert_checks += cert.checks;
        for (ti, &threads) in THREADS.iter().enumerate() {
            let t0 = Instant::now();
            let trace = t.plan.execute(g, threads);
            exec_s[ti] += t0.elapsed().as_secs_f64();
            assert!(
                trace.cut_audit.is_ok(),
                "unsafe cut (epoch {}, threads {threads}): {}",
                t.epoch,
                trace.cut_audit
            );
            sweep[ti] ^= trace.checksum.rotate_left(t.epoch % 63);
            if ti == 0 {
                cuts_validated += trace.cuts_validated;
            }
        }
        let s = t.plan.summary(g);
        println!(
            "{:<7} {:<7} {:<7} {:<7} {:<7} {:<10} {:<10} {:<8.2}",
            t.epoch,
            s.steps,
            s.edges,
            s.width,
            s.depth,
            s.makespan_units,
            s.sequential_units,
            s.speedup,
        );
        agg_steps += s.steps;
        agg_width = agg_width.max(s.width);
        agg_depth = agg_depth.max(s.depth);
        agg_seq += s.sequential_units;
        agg_makespan += s.makespan_units;
        rows.push(s);
    }
    assert!(
        sweep.windows(2).all(|w| w[0] == w[1]),
        "execution trace is thread-count dependent: {sweep:x?}"
    );
    let plan_checksum = sweep[0];
    let speedup = if agg_makespan == 0 {
        1.0
    } else {
        agg_seq as f64 / agg_makespan as f64
    };
    println!(
        "\nplanned: {} transitions, {agg_steps} steps; width {agg_width}, depth {agg_depth};\n\
         makespan {agg_makespan} vs sequential {agg_seq} units — speedup {speedup:.2}x;\n\
         {cert_checks} certificate checks, {cuts_validated} cut states validated;\n\
         plan_checksum {plan_checksum:016x} (threads 1/2/4/7, obs on/off)",
        transitions.len(),
    );
    if !matches!(rc.scale, Scale::Tiny) {
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "planned makespan speedup {speedup:.2}x below floor {SPEEDUP_FLOOR}x"
        );
    }

    rc.record(
        "ext_plan",
        serde_json::json!({
            "transitions": transitions.len() as u64,
            "epochs": transitions.iter().map(|t| u64::from(t.epoch)).collect::<Vec<u64>>(),
            "steps": rows.iter().map(|s| s.steps as u64).collect::<Vec<u64>>(),
            "activations": rows.iter().map(|s| s.activations as u64).collect::<Vec<u64>>(),
            "deactivations": rows.iter().map(|s| s.deactivations as u64).collect::<Vec<u64>>(),
            "migrations": rows.iter().map(|s| s.migrations as u64).collect::<Vec<u64>>(),
            "edges": rows.iter().map(|s| s.edges as u64).collect::<Vec<u64>>(),
            "width": rows.iter().map(|s| s.width as u64).collect::<Vec<u64>>(),
            "depth": rows.iter().map(|s| s.depth as u64).collect::<Vec<u64>>(),
            "makespan_units": rows.iter().map(|s| s.makespan_units).collect::<Vec<u64>>(),
            "sequential_units": rows.iter().map(|s| s.sequential_units).collect::<Vec<u64>>(),
            "speedup": speedup,
            "certificate_checks": cert_checks as u64,
            "cuts_validated": cuts_validated as u64,
            "plan_checksum": format!("{plan_checksum:016x}"),
        }),
    )
    .expect("--record write failed");

    if !matches!(rc.scale, Scale::Tiny) {
        let data = serde_json::json!({
            "nodes": n,
            "brokers": sel.len(),
            "transitions": transitions.len(),
            "steps": agg_steps,
            "width": agg_width,
            "depth": agg_depth,
            "makespan_units": agg_makespan,
            "sequential_units": agg_seq,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "plan_build_s": build_s,
            "exec_threads": THREADS.to_vec(),
            "exec_total_s": exec_s,
            "plan_checksum": format!("{plan_checksum:016x}"),
            "obs_enabled": netgraph::obs::enabled(),
        });
        let record = bench::ExperimentRecord::new("ext_plan", &rc, data);
        let json = serde_json::to_string_pretty(&record).expect("serialize bench record");
        let path = std::path::Path::new("BENCH_plan.json");
        std::fs::write(path, json).expect("write BENCH_plan.json");
        println!("wrote {}", path.display());
    }
    rc.dump_obs("ext_plan").expect("--obs write failed");
}
