//! Table 3: l-hop E2E connectivity of different topologies.
//!
//! ER-Random, WS-Small-World and BA-Scale-free graphs share the vertex
//! and edge budget of the AS topology; "ASes with/without IXPs" are the
//! generated Internet with IXPs as vertices and with them stripped.
//! Connectivity here is free-path (B = V): the row shows how quickly each
//! topology's pair distances saturate — the (α, β) structure Algorithm 2
//! relies on.
//!
//! Usage: `table3 [tiny|quarter|full] [seed] [--threads N] [--obs PATH]
//! [--record DIR]`

use bench::curve_threaded;
use bench::{header, pct, RunConfig};
use netgraph::{barabasi_albert, erdos_renyi_gnm, watts_strogatz, Graph, NodeSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    let m = g.edge_count();
    header(
        "Table 3",
        "l-hop E2E connectivity (free path selection) across topologies",
    );

    let mut rng = ChaCha8Rng::seed_from_u64(rc.seed ^ 0x7ab1e3);
    let er = erdos_renyi_gnm(n, m, &mut rng);
    // WS with matching mean degree 2k ~ 2m/n.
    let k_ws = ((m as f64 / n as f64).round() as usize).max(1);
    let ws = watts_strogatz(n, k_ws, 0.1, &mut rng);
    let ba = barabasi_albert(n, k_ws, &mut rng);
    let (no_ixp, _) = net.without_ixps();

    let max_l = 6;
    let rows: Vec<(&str, &Graph)> = vec![
        ("ER-Random", &er),
        ("WS-Small-World", &ws),
        ("BA-Scale-free", &ba),
        ("ASes with IXPs", g),
        ("ASes without IXPs", &no_ixp),
    ];

    println!(
        "{:<20} {}",
        "topology",
        (1..=max_l).map(|l| format!("l={l:<7}")).collect::<String>()
    );
    let mut recorded: Vec<(String, serde_json::Value)> = Vec::new();
    for (name, graph) in rows {
        let curve = curve_threaded(
            graph,
            &NodeSet::full(graph.node_count()),
            max_l,
            rc.source_mode(),
            rc.threads,
        );
        let cells: String = curve
            .fractions
            .iter()
            .map(|&f| format!("{:<8}", pct(f)))
            .collect();
        println!("{name:<20} {cells}");
        recorded.push((
            name.to_string(),
            serde_json::json!({
                "fractions": curve.fractions.clone(),
                "std_error": curve.std_error.map_or(serde_json::Value::Null, serde_json::Value::from),
                "sources": curve.sources,
            }),
        ));
    }
    println!(
        "\npaper: ASes-with-IXPs reaches 99.21% at l = 4 (the (0.99, 4)-graph\n\
         property); WS stays far below at small l; ER needs larger l than BA."
    );
    rc.record("table3", serde_json::Value::Object(recorded))
        .expect("--record write failed");
    rc.dump_obs("table3").expect("--obs write failed");
}
