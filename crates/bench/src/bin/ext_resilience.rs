//! Extension experiment: alliance robustness under broker failures.
//!
//! Targeted defection of the founding members versus random failures,
//! and the recovery achievable with greedy replacement recruiting.
//!
//! Usage: `ext_resilience [tiny|quarter|full] [seed] [--threads N]
//! [--obs PATH]`

use bench::{header, pct, RunConfig};
use brokerset::{
    failure_trace_threaded, greedy_repair, lhop_failure_trace_threaded, max_subgraph_greedy,
    saturated_connectivity, FailureOrder,
};
use netgraph::NodeSet;

fn main() {
    let rc = RunConfig::from_args();
    let net = rc.internet();
    let g = net.graph();
    let n = g.node_count();
    header(
        "Extension: resilience",
        "connectivity under broker failures",
    );

    let sel = max_subgraph_greedy(g, rc.budgets(n)[2]);
    let targeted = failure_trace_threaded(
        g,
        &sel,
        FailureOrder::TargetedBySelectionRank,
        10,
        rc.threads,
    );
    let random = failure_trace_threaded(
        g,
        &sel,
        FailureOrder::Random {
            seed: rc.seed ^ 0xfa11,
        },
        10,
        rc.threads,
    );

    // Hop-bounded view of the same targeted trace: short dominating
    // paths decay before saturated connectivity does. Exact at every
    // step — affordable thanks to the 64-lane msbfs kernel.
    const MAX_L: usize = 6;
    let targeted_lhop = lhop_failure_trace_threaded(
        g,
        &sel,
        FailureOrder::TargetedBySelectionRank,
        10,
        MAX_L,
        rc.source_mode(),
        rc.threads,
    );

    println!(
        "{:<10} {:<12} {:<12} {:<14}",
        "removed",
        "targeted",
        "random",
        format!("targeted l<={MAX_L}")
    );
    for i in 0..targeted.connectivity.len() {
        println!(
            "{:<10} {:<12} {:<12} {:<14}",
            format!("{:.0}%", 100.0 * targeted.removed_fraction[i]),
            pct(targeted.connectivity[i]),
            pct(random.connectivity[i]),
            pct(targeted_lhop.lhop_connectivity[i]),
        );
    }

    // Repair: fail top 10%, recruit the same number of replacements.
    let n_fail = sel.len() / 10;
    let mut survivors = sel.brokers().clone();
    let mut failed = NodeSet::new(n);
    for &v in sel.order().iter().take(n_fail) {
        survivors.remove(v);
        failed.insert(v);
    }
    let broken = saturated_connectivity(g, &survivors).fraction;
    let repaired = greedy_repair(g, &survivors, &failed, n_fail, rc.seed);
    let fixed = saturated_connectivity(g, repaired.brokers()).fraction;
    println!(
        "\nrepair: fail top {n_fail} -> {}; recruit {n_fail} replacements -> {}",
        pct(broken),
        pct(fixed)
    );
    rc.dump_obs("ext_resilience").expect("--obs write failed");
}
