//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every `table*`/`fig*` binary follows the same shape: parse a scale and
//! seed from the command line, generate (or reuse) the topology, run the
//! experiment, and print the paper's reported numbers next to ours. The
//! helpers here keep that uniform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use brokerset::SourceMode;
use topology::{Internet, InternetConfig, Scale};

/// Parsed command line shared by all experiment binaries:
/// `<bin> [tiny|quarter|full] [seed] [--threads N]`.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Topology scale.
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads for the parallel evaluators (`0` = all hardware
    /// threads). Results are identical at every setting.
    pub threads: usize,
}

impl RunConfig {
    /// Parse from `std::env::args`. Defaults: quarter scale, seed 2014,
    /// all hardware threads. `--threads N` may appear anywhere.
    pub fn from_args() -> Self {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let mut threads = 0usize;
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            let value = args.get(i + 1).cloned();
            match value.as_deref().map(str::parse) {
                Some(Ok(n)) => threads = n,
                _ => eprintln!("--threads expects a number, using auto"),
            }
            args.drain(i..(i + 2).min(args.len()));
        }
        let scale = match args.first().map(String::as_str) {
            Some("full") => Scale::Full,
            Some("tiny") => Scale::Tiny,
            Some("quarter") | None => Scale::Quarter,
            Some(other) => {
                eprintln!("unknown scale '{other}', using quarter");
                Scale::Quarter
            }
        };
        let seed = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2014);
        RunConfig {
            scale,
            seed,
            threads,
        }
    }

    /// Generate the topology for this run.
    pub fn internet(&self) -> Internet {
        let cfg = InternetConfig::scaled(self.scale);
        eprintln!(
            "[harness] generating {:?}-scale topology ({} nodes), seed {}",
            self.scale,
            cfg.node_count(),
            self.seed
        );
        let t0 = std::time::Instant::now();
        let net = cfg.generate(self.seed);
        eprintln!("[harness] generated in {:?}", t0.elapsed());
        net
    }

    /// The paper's three broker budgets (0.19 %, 1.9 %, 6.8 % of nodes),
    /// scaled to this topology.
    pub fn budgets(&self, node_count: usize) -> [usize; 3] {
        [
            budget(node_count, 0.0019),
            budget(node_count, 0.019),
            budget(node_count, 0.068),
        ]
    }

    /// Source sampling mode adapted to scale: exact for tiny topologies,
    /// sampled elsewhere (error shown by the evaluators).
    pub fn source_mode(&self) -> SourceMode {
        match self.scale {
            Scale::Tiny => SourceMode::Exact,
            Scale::Quarter => SourceMode::Sampled {
                count: 1200,
                seed: self.seed ^ 0x5eed,
            },
            Scale::Full => SourceMode::Sampled {
                count: 1500,
                seed: self.seed ^ 0x5eed,
            },
        }
    }
}

fn budget(n: usize, frac: f64) -> usize {
    ((n as f64 * frac).round() as usize).max(1)
}

/// Evaluate an l-hop curve using all available cores (identical output
/// to the sequential evaluator).
pub fn curve(
    g: &netgraph::Graph,
    brokers: &netgraph::NodeSet,
    max_l: usize,
    mode: SourceMode,
) -> brokerset::connectivity::LhopCurve {
    curve_threaded(g, brokers, max_l, mode, 0)
}

/// Evaluate an l-hop curve on an explicit worker count (`0` = all
/// hardware threads); output is identical at every setting.
pub fn curve_threaded(
    g: &netgraph::Graph,
    brokers: &netgraph::NodeSet,
    max_l: usize,
    mode: SourceMode,
    threads: usize,
) -> brokerset::connectivity::LhopCurve {
    brokerset::lhop_curve_parallel(g, brokers, max_l, mode, threads)
}

/// Provenance record written next to an experiment's stdout: which
/// binary, scale and seed produced a result set, plus the measured
/// values as free-form JSON.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. "table1").
    pub id: String,
    /// Scale the run used.
    pub scale: String,
    /// Topology seed.
    pub seed: u64,
    /// Measured values.
    pub data: serde_json::Value,
}

impl ExperimentRecord {
    /// Assemble a record for this run configuration.
    pub fn new(id: &str, rc: &RunConfig, data: serde_json::Value) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            scale: format!("{:?}", rc.scale),
            seed: rc.seed,
            data,
        }
    }

    /// Write the record to `results/<id>.<scale>.json` under `dir`,
    /// creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.{}.json", self.id, self.scale.to_lowercase()));
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Print a two-column "paper vs measured" comparison row.
pub fn compare_row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:>12}   ours: {measured:>12}");
}

/// Print an experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Format a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_node_count() {
        let rc = RunConfig {
            scale: Scale::Full,
            seed: 1,
            threads: 0,
        };
        let b = rc.budgets(52_079);
        assert_eq!(b, [99, 990, 3541]);
        // never zero
        assert_eq!(rc.budgets(10), [1, 1, 1]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5313), "53.13%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn experiment_record_roundtrip() {
        let rc = RunConfig {
            scale: Scale::Tiny,
            seed: 9,
            threads: 0,
        };
        let rec = ExperimentRecord::new(
            "table1",
            &rc,
            serde_json::json!({"k": [25, 247], "sat": [0.51, 0.88]}),
        );
        let dir = std::env::temp_dir().join("bench-record-test");
        let path = rec.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back.id, "table1");
        assert_eq!(back.seed, 9);
        assert_eq!(back.data["k"][0], 25);
        std::fs::remove_dir_all(&dir).ok();
    }
}
