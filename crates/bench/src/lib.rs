//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every `table*`/`fig*` binary follows the same shape: parse a scale and
//! seed from the command line, generate (or reuse) the topology, run the
//! experiment, and print the paper's reported numbers next to ours. The
//! helpers here keep that uniform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use brokerset::SourceMode;
use topology::{Internet, InternetConfig, Scale};

/// Parsed command line shared by all experiment binaries:
/// `<bin> [tiny|quarter|full] [seed] [--threads N] [--obs PATH]
/// [--record DIR]`.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Topology scale.
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads for the parallel evaluators (`0` = all hardware
    /// threads). Results are identical at every setting.
    pub threads: usize,
    /// Where to dump a `netgraph::obs` metrics snapshot at the end of
    /// the run (`--obs PATH`). Meaningful only in `--features obs`
    /// builds; otherwise the dump is empty and says so.
    pub obs: Option<std::path::PathBuf>,
    /// Directory to save this run's [`ExperimentRecord`] under
    /// (`--record DIR`) for the golden-snapshot tests.
    pub record: Option<std::path::PathBuf>,
    /// TCP port for the serving binaries (`--port N`; `0` = pick an
    /// ephemeral port). `None` when the flag was not given.
    pub port: Option<u16>,
    /// Path to a serialized `BRI1` reachability index (`--index PATH`):
    /// the serving binaries load it instead of building one.
    pub index: Option<std::path::PathBuf>,
}

impl RunConfig {
    /// Parse from `std::env::args`. Defaults: quarter scale, seed 2014,
    /// all hardware threads. `--threads N` may appear anywhere. Malformed
    /// or unknown arguments print a usage message and exit with status 2
    /// — silently falling back to defaults would make a typo'd benchmark
    /// run measure the wrong thing.
    pub fn from_args() -> Self {
        let (rc, _) = Self::from_args_extended(ArgExtras::default(), "");
        rc
    }

    /// [`from_args`](RunConfig::from_args) for binaries that take extra
    /// arguments beyond the shared form: `extras` declares them, and
    /// `usage_extra` is appended to the usage line (e.g. `" [runs]"`).
    /// Unknown flags and surplus positionals are still hard errors.
    pub fn from_args_extended(extras: ArgExtras<'_>, usage_extra: &str) -> (Self, ParsedExtras) {
        match Self::parse_extended(std::env::args().skip(1), extras) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <bin> [tiny|quarter|full] [seed] [--threads N] \
                     [--obs PATH] [--record DIR] [--port N] [--index PATH]{usage_extra}"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument list (without the program name). Every argument
    /// must be understood: unknown flags, malformed `--threads` values,
    /// non-integer seeds and surplus positionals are hard errors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first bad argument.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        Self::parse_extended(args, ArgExtras::default()).map(|(rc, _)| rc)
    }

    /// [`parse`](RunConfig::parse) plus a declared set of binary-specific
    /// extra arguments. Anything not covered by the shared form or by
    /// `extras` is a hard error, so every binary stays typo-safe while
    /// still owning its extra knobs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first bad argument.
    pub fn parse_extended<I: IntoIterator<Item = String>>(
        args: I,
        extras: ArgExtras<'_>,
    ) -> Result<(Self, ParsedExtras), String> {
        let mut rc = RunConfig {
            scale: Scale::Quarter,
            seed: 2014,
            threads: 0,
            obs: None,
            record: None,
            port: None,
            index: None,
        };
        let mut parsed = ParsedExtras {
            flags: Vec::new(),
            positionals: Vec::new(),
        };
        let mut positionals = 0usize;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--threads" {
                let value = iter.next().ok_or("--threads expects a number")?;
                rc.threads = value
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got '{value}'"))?;
            } else if arg == "--obs" {
                let value = iter.next().ok_or("--obs expects a file path")?;
                rc.obs = Some(std::path::PathBuf::from(value));
            } else if arg == "--record" {
                let value = iter.next().ok_or("--record expects a directory")?;
                rc.record = Some(std::path::PathBuf::from(value));
            } else if arg == "--port" {
                let value = iter.next().ok_or("--port expects a port number")?;
                rc.port = Some(value.parse().map_err(|_| {
                    format!("--port expects a port number (0-65535), got '{value}'")
                })?);
            } else if arg == "--index" {
                let value = iter.next().ok_or("--index expects a file path")?;
                rc.index = Some(std::path::PathBuf::from(value));
            } else if extras.value_flags.contains(&arg.as_str()) {
                let value = iter.next().ok_or(format!("{arg} expects a value"))?;
                parsed.flags.push((arg, value));
            } else if arg.starts_with('-') {
                return Err(format!("unknown flag '{arg}'"));
            } else {
                match positionals {
                    0 => {
                        rc.scale = match arg.as_str() {
                            "tiny" => Scale::Tiny,
                            "quarter" => Scale::Quarter,
                            "full" => Scale::Full,
                            other => {
                                return Err(format!(
                                    "unknown scale '{other}' (expected tiny|quarter|full)"
                                ))
                            }
                        }
                    }
                    1 => {
                        rc.seed = arg
                            .parse()
                            .map_err(|_| format!("seed must be an integer, got '{arg}'"))?
                    }
                    _ if positionals < 2 + extras.max_positionals => {
                        parsed.positionals.push(arg);
                    }
                    _ => return Err(format!("unexpected argument '{arg}'")),
                }
                positionals += 1;
            }
        }
        Ok((rc, parsed))
    }

    /// Generate the topology for this run.
    pub fn internet(&self) -> Internet {
        let cfg = InternetConfig::scaled(self.scale);
        eprintln!(
            "[harness] generating {:?}-scale topology ({} nodes), seed {}",
            self.scale,
            cfg.node_count(),
            self.seed
        );
        let t0 = std::time::Instant::now();
        let net = cfg.generate(self.seed);
        eprintln!("[harness] generated in {:?}", t0.elapsed());
        net
    }

    /// The paper's three broker budgets (0.19 %, 1.9 %, 6.8 % of nodes),
    /// scaled to this topology.
    pub fn budgets(&self, node_count: usize) -> [usize; 3] {
        [
            budget(node_count, 0.0019),
            budget(node_count, 0.019),
            budget(node_count, 0.068),
        ]
    }

    /// Dump a `netgraph::obs` snapshot to the `--obs` path, if one was
    /// given, and print a one-line digest of the run's engine behaviour
    /// to stderr (arena-pool hit rate, push vs pull expansions). A no-op
    /// without `--obs`; in a build without the `obs` feature the dump
    /// still happens but contains no metrics (and the digest says so).
    ///
    /// # Errors
    ///
    /// Propagates the snapshot write failure.
    pub fn dump_obs(&self, id: &str) -> std::io::Result<()> {
        let Some(path) = &self.obs else {
            return Ok(());
        };
        let snap = netgraph::obs::snapshot();
        std::fs::write(path, snap.to_json())?;
        eprintln!("[obs] {id}: {}", obs_digest(&snap));
        eprintln!("[obs] snapshot written to {}", path.display());
        Ok(())
    }

    /// Save `data` as an [`ExperimentRecord`] under the `--record`
    /// directory, if one was given. A no-op without `--record`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors from
    /// [`ExperimentRecord::save`].
    pub fn record(&self, id: &str, data: serde_json::Value) -> std::io::Result<()> {
        let Some(dir) = &self.record else {
            return Ok(());
        };
        let path = ExperimentRecord::new(id, self, data).save(dir)?;
        eprintln!("[record] {id}: results written to {}", path.display());
        Ok(())
    }

    /// Source sampling mode adapted to scale: exact for tiny *and*
    /// quarter topologies — the 64-lane `netgraph::msbfs` kernel makes an
    /// every-vertex-a-source sweep at 13k nodes cheaper than the old
    /// per-source loop's 1200-source sample — sampled at full scale
    /// (error shown by the evaluators).
    pub fn source_mode(&self) -> SourceMode {
        match self.scale {
            Scale::Tiny | Scale::Quarter => SourceMode::Exact,
            Scale::Full => SourceMode::Sampled {
                count: 1500,
                seed: self.seed ^ 0x5eed,
            },
        }
    }
}

/// Extra arguments a binary accepts beyond the shared
/// `[scale] [seed] [--threads N]` form (see
/// [`RunConfig::parse_extended`]). Default: none.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgExtras<'a> {
    /// Flags that take exactly one value (e.g. `"--dot"`).
    pub value_flags: &'a [&'a str],
    /// How many surplus positionals (after scale and seed) are allowed.
    pub max_positionals: usize,
}

/// The extra arguments actually supplied, in command-line order.
#[derive(Debug, Clone, Default)]
pub struct ParsedExtras {
    /// `(flag, value)` pairs for each declared value flag seen.
    pub flags: Vec<(String, String)>,
    /// Surplus positionals beyond scale and seed.
    pub positionals: Vec<String>,
}

impl ParsedExtras {
    /// The value of the last occurrence of `flag`, if any.
    pub fn flag(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }
}

fn budget(n: usize, frac: f64) -> usize {
    ((n as f64 * frac).round() as usize).max(1)
}

/// One-line human digest of an obs snapshot: the numbers a profiling run
/// checks first. Reports "instrumentation off" for feature-off builds.
pub fn obs_digest(snap: &netgraph::obs::Snapshot) -> String {
    if !netgraph::obs::enabled() {
        return "instrumentation off (rebuild with --features obs)".to_string();
    }
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let hit_rate = |acq: u64, fresh: u64| {
        if acq + fresh == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * acq as f64 / (acq + fresh) as f64)
        }
    };
    format!(
        "msbfs pool hit {} | arena pool hit {} | worker reuse {} | push/pull expansions {}/{} | levels {} | par chunks {} | steals {}",
        hit_rate(c("msbfs.pool.acquire"), c("msbfs.pool.fresh")),
        hit_rate(c("arena.pool.acquire"), c("arena.pool.fresh")),
        hit_rate(c("par.pool_reuse"), c("par.pool.spawn")),
        c("msbfs.push_expansions"),
        c("msbfs.pull_expansions"),
        c("msbfs.levels"),
        c("par.chunks"),
        c("par.steal"),
    )
}

/// Evaluate an l-hop curve using all available cores (identical output
/// to the sequential evaluator).
pub fn curve(
    g: &netgraph::Graph,
    brokers: &netgraph::NodeSet,
    max_l: usize,
    mode: SourceMode,
) -> brokerset::connectivity::LhopCurve {
    curve_threaded(g, brokers, max_l, mode, 0)
}

/// Evaluate an l-hop curve on an explicit worker count (`0` = all
/// hardware threads); output is identical at every setting.
pub fn curve_threaded(
    g: &netgraph::Graph,
    brokers: &netgraph::NodeSet,
    max_l: usize,
    mode: SourceMode,
    threads: usize,
) -> brokerset::connectivity::LhopCurve {
    brokerset::lhop_curve_parallel(g, brokers, max_l, mode, threads)
}

/// Provenance record written next to an experiment's stdout: which
/// binary, scale and seed produced a result set, plus the measured
/// values as free-form JSON.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. "table1").
    pub id: String,
    /// Scale the run used.
    pub scale: String,
    /// Topology seed.
    pub seed: u64,
    /// Measured values.
    pub data: serde_json::Value,
}

impl ExperimentRecord {
    /// Assemble a record for this run configuration.
    pub fn new(id: &str, rc: &RunConfig, data: serde_json::Value) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            scale: format!("{:?}", rc.scale),
            seed: rc.seed,
            data,
        }
    }

    /// Write the record to `results/<id>.<scale>.json` under `dir`,
    /// creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.{}.json", self.id, self.scale.to_lowercase()));
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

/// Print a two-column "paper vs measured" comparison row.
pub fn compare_row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:>12}   ours: {measured:>12}");
}

/// Print an experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Format a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_node_count() {
        let rc = RunConfig {
            scale: Scale::Full,
            seed: 1,
            threads: 0,
            obs: None,
            record: None,
            port: None,
            index: None,
        };
        let b = rc.budgets(52_079);
        assert_eq!(b, [99, 990, 3541]);
        // never zero
        assert_eq!(rc.budgets(10), [1, 1, 1]);
    }

    fn parse(args: &[&str]) -> Result<RunConfig, String> {
        RunConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_defaults_and_full_form() {
        let rc = parse(&[]).expect("empty argv uses defaults");
        assert!(matches!(rc.scale, Scale::Quarter));
        assert_eq!((rc.seed, rc.threads), (2014, 0));

        let rc = parse(&["tiny", "7", "--threads", "4"]).expect("full form parses");
        assert!(matches!(rc.scale, Scale::Tiny));
        assert_eq!((rc.seed, rc.threads), (7, 4));

        // --threads may appear anywhere, including before positionals.
        let rc = parse(&["--threads", "2", "full"]).expect("flag before positional parses");
        assert!(matches!(rc.scale, Scale::Full));
        assert_eq!(rc.threads, 2);
    }

    #[test]
    fn parse_obs_and_record_flags() {
        let rc = parse(&["tiny", "7", "--obs", "snap.json", "--record", "out"])
            .expect("--obs/--record parse");
        assert_eq!(rc.obs.as_deref(), Some(std::path::Path::new("snap.json")));
        assert_eq!(rc.record.as_deref(), Some(std::path::Path::new("out")));
        let rc = parse(&[]).expect("empty argv uses defaults");
        assert!(rc.obs.is_none() && rc.record.is_none());
        assert!(parse(&["--obs"]).unwrap_err().contains("expects"));
        assert!(parse(&["--record"]).unwrap_err().contains("expects"));
    }

    #[test]
    fn parse_port_and_index_flags() {
        let rc = parse(&["tiny", "7", "--port", "0", "--index", "idx.bri"])
            .expect("--port/--index parse");
        assert_eq!(rc.port, Some(0));
        assert_eq!(rc.index.as_deref(), Some(std::path::Path::new("idx.bri")));
        let rc = parse(&["--port", "7700"]).expect("--port alone parses");
        assert_eq!(rc.port, Some(7700));
        let rc = parse(&[]).expect("empty argv uses defaults");
        assert!(rc.port.is_none() && rc.index.is_none());

        // Malformed values are parse errors (exit 2 through from_args).
        assert!(parse(&["--port"]).unwrap_err().contains("expects"));
        assert!(parse(&["--port", "http"]).unwrap_err().contains("http"));
        assert!(parse(&["--port", "70000"]).unwrap_err().contains("70000"));
        assert!(parse(&["--port", "-1"]).unwrap_err().contains("-1"));
        assert!(parse(&["--index"]).unwrap_err().contains("expects"));
    }

    #[test]
    fn parse_rejects_bad_arguments() {
        assert!(parse(&["medium"]).unwrap_err().contains("unknown scale"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["--threads"]).unwrap_err().contains("expects"));
        assert!(parse(&["--threads", "many"]).unwrap_err().contains("many"));
        assert!(parse(&["tiny", "notanumber"]).unwrap_err().contains("seed"));
        assert!(parse(&["tiny", "1", "extra"])
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn parse_extended_accepts_declared_extras_only() {
        let extras = ArgExtras {
            value_flags: &["--dot"],
            max_positionals: 1,
        };
        let run =
            |argv: &[&str]| RunConfig::parse_extended(argv.iter().map(|s| s.to_string()), extras);

        let (rc, extra) =
            run(&["tiny", "7", "20", "--dot", "out.dot"]).expect("declared extras parse");
        assert!(matches!(rc.scale, Scale::Tiny));
        assert_eq!(extra.positionals, vec!["20".to_string()]);
        assert_eq!(extra.flag("--dot"), Some("out.dot"));
        assert_eq!(extra.flag("--missing"), None);

        // Declared extras do not weaken the strictness elsewhere.
        assert!(run(&["tiny", "7", "20", "21"])
            .unwrap_err()
            .contains("unexpected"));
        assert!(run(&["--dot"]).unwrap_err().contains("expects a value"));
        assert!(run(&["--runs", "5"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn source_mode_exact_through_quarter() {
        let mode = |scale| {
            RunConfig {
                scale,
                seed: 1,
                threads: 0,
                obs: None,
                record: None,
                port: None,
                index: None,
            }
            .source_mode()
        };
        assert_eq!(mode(Scale::Tiny), SourceMode::Exact);
        assert_eq!(mode(Scale::Quarter), SourceMode::Exact);
        assert!(matches!(mode(Scale::Full), SourceMode::Sampled { .. }));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5313), "53.13%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn experiment_record_roundtrip() {
        let rc = RunConfig {
            scale: Scale::Tiny,
            seed: 9,
            threads: 0,
            obs: None,
            record: None,
            port: None,
            index: None,
        };
        let rec = ExperimentRecord::new(
            "table1",
            &rc,
            serde_json::json!({"k": [25, 247], "sat": [0.51, 0.88]}),
        );
        let dir = std::env::temp_dir().join("bench-record-test");
        let path = rec.save(&dir).expect("record saves to temp dir");
        let text = std::fs::read_to_string(&path).expect("saved record is readable");
        let back: ExperimentRecord = serde_json::from_str(&text).expect("saved record parses back");
        assert_eq!(back.id, "table1");
        assert_eq!(back.seed, 9);
        assert_eq!(back.data["k"][0], 25);
        std::fs::remove_dir_all(&dir).ok();
    }
}
