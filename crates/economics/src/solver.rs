//! Tiny 1-D optimization toolbox used by the game solvers.
//!
//! Everything in Section 7 reduces to maximizing continuous
//! (quasi-)concave functions over compact intervals, so golden-section
//! search and bisection on monotone derivatives are all we need.

/// Golden-section maximization of a unimodal `f` on `[lo, hi]`.
///
/// Returns `(argmax, max)` within `tol` of the true optimizer.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
pub fn golden_max(mut lo: f64, mut hi: f64, tol: f64, f: impl Fn(f64) -> f64) -> (f64, f64) {
    assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    while hi - lo > tol {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        }
    }
    let x = 0.5 * (lo + hi);
    (x, f(x))
}

/// Find the root of a *decreasing* function `g` on `[lo, hi]` by
/// bisection; clamps to the boundary when `g` has constant sign (the
/// argmax of a concave objective whose derivative is `g` then sits at
/// that boundary).
pub fn bisect_decreasing(mut lo: f64, mut hi: f64, tol: f64, g: impl Fn(f64) -> f64) -> f64 {
    assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
    if g(lo) <= 0.0 {
        return lo;
    }
    if g(hi) >= 0.0 {
        return hi;
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if g(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Maximum of a grid scan followed by a golden-section refinement —
/// robust for continuous objectives that may have small local plateaus
/// (e.g. the leader's profit in the Stackelberg game).
pub fn grid_then_golden(
    lo: f64,
    hi: f64,
    grid: usize,
    tol: f64,
    f: impl Fn(f64) -> f64,
) -> (f64, f64) {
    assert!(grid >= 2, "need at least 2 grid points");
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..=grid {
        let x = lo + (hi - lo) * i as f64 / grid as f64;
        let v = f(x);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let cell = (hi - lo) / grid as f64;
    let wlo = (lo + cell * best_i.saturating_sub(1) as f64).max(lo);
    let whi = (lo + cell * (best_i + 1) as f64).min(hi);
    golden_max(wlo, whi, tol, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_peak() {
        let (x, v) = golden_max(0.0, 10.0, 1e-9, |x| -(x - 3.7) * (x - 3.7) + 2.0);
        assert!((x - 3.7).abs() < 1e-6);
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn golden_boundary_max() {
        let (x, _) = golden_max(0.0, 1.0, 1e-9, |x| x);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn golden_rejects_reversed_interval() {
        golden_max(1.0, 0.0, 1e-9, |x| x);
    }

    #[test]
    fn bisect_root() {
        let x = bisect_decreasing(0.0, 10.0, 1e-10, |x| 5.0 - x);
        assert!((x - 5.0).abs() < 1e-8);
    }

    #[test]
    fn bisect_clamps_at_boundaries() {
        assert_eq!(bisect_decreasing(2.0, 5.0, 1e-10, |x| -x), 2.0);
        assert_eq!(bisect_decreasing(2.0, 5.0, 1e-10, |x| 100.0 - x), 5.0);
    }

    #[test]
    fn grid_then_golden_handles_two_humps() {
        // Global max at x=8 (height 3), local at x=2 (height 2).
        let f = |x: f64| {
            let a = 2.0 * (-(x - 2.0) * (x - 2.0)).exp();
            let b = 3.0 * (-(x - 8.0) * (x - 8.0)).exp();
            a + b
        };
        let (x, _) = grid_then_golden(0.0, 10.0, 50, 1e-9, f);
        assert!((x - 8.0).abs() < 1e-3);
    }
}
