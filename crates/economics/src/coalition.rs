//! Characteristic functions and coalition stability conditions
//! (Theorems 7 and 8).
//!
//! A cooperative game over players `0..n` is given by a characteristic
//! function `U : 2^N → ℝ` with `U(∅) = 0`. Stability of the brokerage
//! coalition rests on:
//!
//! - **superadditivity** — `U(K ∪ L) ≥ U(K) + U(L)` for disjoint `K, L`;
//!   implies Shapley individual rationality (Theorem 7);
//! - **supermodularity** (convexity) — `Δ_j(K) ≤ Δ_j(L)` for `K ⊆ L`;
//!   implies group rationality, i.e. no subcoalition wants to defect
//!   (Theorem 8). The paper's observation that supermodularity *fails*
//!   once the broker set grows past the important ASes is what bounds
//!   the sensible coalition size.
//!
//! Coalitions are bitmask-encoded (`u32`), capping exhaustive checks at
//! 20 players; use the sampled variants beyond.

use rand::Rng;

/// A characteristic function over at most 20 players, evaluated on
/// bitmask coalitions.
pub trait CharacteristicFn {
    /// Number of players `n`.
    fn players(&self) -> usize;
    /// Value of the coalition encoded by `mask` (bit `j` = player `j`).
    fn value(&self, mask: u32) -> f64;
}

/// A characteristic function backed by a closure.
#[derive(Debug, Clone, Copy)]
pub struct FnGame<F> {
    /// Player count.
    pub n: usize,
    /// Valuation closure.
    pub f: F,
}

impl<F: Fn(u32) -> f64> CharacteristicFn for FnGame<F> {
    fn players(&self) -> usize {
        self.n
    }
    fn value(&self, mask: u32) -> f64 {
        (self.f)(mask)
    }
}

/// A characteristic function backed by a dense table of all `2^n` values.
#[derive(Debug, Clone)]
pub struct TableGame {
    values: Vec<f64>,
    n: usize,
}

impl TableGame {
    /// Build from the `2^n` coalition values (index = bitmask).
    ///
    /// # Panics
    ///
    /// Panics if the table length is not a power of two or `U(∅) != 0`.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.len().is_power_of_two(),
            "table must have 2^n entries"
        );
        assert!(
            values[0].abs() < 1e-12,
            "U(empty) must be 0, got {}",
            values[0]
        );
        let n = values.len().trailing_zeros() as usize;
        TableGame { values, n }
    }
}

impl CharacteristicFn for TableGame {
    fn players(&self) -> usize {
        self.n
    }
    fn value(&self, mask: u32) -> f64 {
        self.values[mask as usize]
    }
}

impl netgraph::Validate for TableGame {
    /// Re-derive the constructor's contract from the stored table: the
    /// length is exactly `2^n`, the grand-coalition index fits in the
    /// mask width, `U(∅) = 0`, and every value is finite.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("economics::TableGame");
        rep.check(
            "game.table-shape",
            self.values.len() == 1usize << self.n,
            || {
                format!(
                    "{} entries for {} players (expected {})",
                    self.values.len(),
                    self.n,
                    1usize << self.n
                )
            },
        );
        rep.check(
            "game.empty-coalition-zero",
            self.values.first().is_some_and(|v| v.abs() < 1e-12),
            || format!("U(empty) = {:?}", self.values.first()),
        );
        rep.check(
            "game.values-finite",
            self.values.iter().all(|v| v.is_finite()),
            || "a coalition value is not finite".into(),
        );
        rep
    }
}

fn check_player_cap(n: usize) {
    assert!(n <= 20, "exhaustive checks capped at 20 players, got {n}");
}

/// Exhaustively check superadditivity: `U(K ∪ L) ≥ U(K) + U(L)` for all
/// disjoint pairs. `O(3^n)`.
pub fn is_superadditive<G: CharacteristicFn>(game: &G) -> bool {
    let n = game.players();
    check_player_cap(n);
    let full = (1u32 << n) - 1;
    // Iterate masks; for each, iterate sub-masks of its complement.
    for k in 1..=full {
        let comp = full & !k;
        let mut l = comp;
        loop {
            if l != 0 && game.value(k | l) < game.value(k) + game.value(l) - 1e-9 {
                return false;
            }
            if l == 0 {
                break;
            }
            l = (l - 1) & comp;
        }
    }
    true
}

/// Exhaustively check supermodularity:
/// `U(K ∪ {j}) − U(K) ≤ U(L ∪ {j}) − U(L)` for all `K ⊆ L`, `j ∉ L`.
/// Uses the equivalent pairwise condition
/// `U(S ∪ {i, j}) − U(S ∪ {j}) ≥ U(S ∪ {i}) − U(S)`.
pub fn is_supermodular<G: CharacteristicFn>(game: &G) -> bool {
    let n = game.players();
    check_player_cap(n);
    let full = (1u32 << n) - 1;
    for s in 0..=full {
        for i in 0..n {
            let bi = 1u32 << i;
            if s & bi != 0 {
                continue;
            }
            for j in (i + 1)..n {
                let bj = 1u32 << j;
                if s & bj != 0 {
                    continue;
                }
                let lhs = game.value(s | bi | bj) - game.value(s | bj);
                let rhs = game.value(s | bi) - game.value(s);
                if lhs < rhs - 1e-9 {
                    return false;
                }
            }
        }
    }
    true
}

/// Sampled supermodularity check for larger games: draws `samples`
/// random `(S, i, j)` triples and reports the fraction that satisfy the
/// pairwise condition (1.0 = no violation observed).
pub fn supermodularity_score<G: CharacteristicFn, R: Rng>(
    game: &G,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = game.players();
    assert!(n >= 2, "need at least two players");
    assert!(n < 32, "bitmask games capped at 31 players");
    let mut ok = 0usize;
    for _ in 0..samples {
        let s: u32 = rng.gen_range(0..(1u32 << n));
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        while j == i {
            j = rng.gen_range(0..n);
        }
        let (bi, bj) = (1u32 << i, 1u32 << j);
        let s = s & !(bi | bj);
        let lhs = game.value(s | bi | bj) - game.value(s | bj);
        let rhs = game.value(s | bi) - game.value(s);
        if lhs >= rhs - 1e-9 {
            ok += 1;
        }
    }
    ok as f64 / samples.max(1) as f64
}

/// Marginal contribution `Δ_j(K) = U(K ∪ {j}) − U(K)` (Eq. 12).
pub fn marginal_contribution<G: CharacteristicFn>(game: &G, mask: u32, j: usize) -> f64 {
    let bj = 1u32 << j;
    debug_assert_eq!(mask & bj, 0, "player {j} already in coalition");
    game.value(mask | bj) - game.value(mask)
}

/// Is `allocation` in the *core* of the game? Requires efficiency
/// (Σ x_j = U(N)) and coalitional rationality (Σ_{j∈S} x_j ≥ U(S) for
/// every S). Exhaustive, capped at 20 players.
///
/// Theorem 8's supermodularity implies the Shapley value lies in the
/// core — the property test checks exactly that.
///
/// # Panics
///
/// Panics if the allocation length differs from the player count or the
/// game has more than 20 players.
pub fn is_in_core<G: CharacteristicFn>(game: &G, allocation: &[f64], tol: f64) -> bool {
    let n = game.players();
    check_player_cap(n);
    assert_eq!(allocation.len(), n, "allocation length mismatch");
    let full = (1u32 << n) - 1;
    let total: f64 = allocation.iter().sum();
    if (total - game.value(full)).abs() > tol {
        return false;
    }
    for s in 1..full {
        let share: f64 = (0..n)
            .filter(|&j| s >> j & 1 == 1)
            .map(|j| allocation[j])
            .sum();
        if share < game.value(s) - tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// U(S) = |S|² — supermodular and superadditive.
    fn quadratic(n: usize) -> FnGame<impl Fn(u32) -> f64> {
        FnGame {
            n,
            f: |m: u32| (m.count_ones() as f64).powi(2),
        }
    }

    /// U(S) = sqrt(|S|) — subadditive in the margin (not supermodular),
    /// still superadditive? sqrt(a+b) <= sqrt(a)+sqrt(b), so NOT
    /// superadditive for disjoint nonempty sets... actually
    /// sqrt(2) < 1 + 1: superadditivity fails.
    fn sqrt_game(n: usize) -> FnGame<impl Fn(u32) -> f64> {
        FnGame {
            n,
            f: |m: u32| (m.count_ones() as f64).sqrt(),
        }
    }

    #[test]
    fn quadratic_is_super_everything() {
        let g = quadratic(5);
        assert!(is_superadditive(&g));
        assert!(is_supermodular(&g));
    }

    #[test]
    fn sqrt_fails_both() {
        let g = sqrt_game(5);
        assert!(!is_superadditive(&g));
        assert!(!is_supermodular(&g));
    }

    #[test]
    fn additive_is_borderline() {
        // U(S) = |S| satisfies both with equality.
        let g = FnGame {
            n: 6,
            f: |m: u32| m.count_ones() as f64,
        };
        assert!(is_superadditive(&g));
        assert!(is_supermodular(&g));
    }

    #[test]
    fn table_game_roundtrip() {
        // 2 players: U({0}) = 1, U({1}) = 2, U({0,1}) = 5.
        let g = TableGame::new(vec![0.0, 1.0, 2.0, 5.0]);
        assert_eq!(g.players(), 2);
        assert_eq!(g.value(0b11), 5.0);
        assert!(is_superadditive(&g));
        assert!(is_supermodular(&g));
        assert_eq!(marginal_contribution(&g, 0b01, 1), 4.0);
    }

    #[test]
    fn table_audit_accepts_and_detects_corruption() {
        use netgraph::Validate;
        let good = TableGame::new(vec![0.0, 1.0, 2.0, 5.0]);
        assert!(good.audit().is_ok());

        // Table length no longer 2^n for the cached player count.
        let mut bad = good.clone();
        bad.values.pop();
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "game.table-shape"));

        // U(∅) drifted away from zero.
        let mut bad = good.clone();
        bad.values[0] = 0.5;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "game.empty-coalition-zero"));

        // A non-finite coalition value.
        let mut bad = good;
        bad.values[3] = f64::INFINITY;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "game.values-finite"));
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn table_rejects_bad_length() {
        TableGame::new(vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "U(empty)")]
    fn table_rejects_nonzero_empty() {
        TableGame::new(vec![1.0, 1.0]);
    }

    #[test]
    fn sampled_score_matches_exhaustive() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let good = quadratic(8);
        assert_eq!(supermodularity_score(&good, 2000, &mut rng), 1.0);
        let bad = sqrt_game(8);
        let score = supermodularity_score(&bad, 2000, &mut rng);
        assert!(score < 1.0, "score {score} should expose violations");
    }

    #[test]
    fn core_membership() {
        // Additive game: the individual-value allocation is in the core.
        let g = FnGame {
            n: 4,
            f: |m: u32| m.count_ones() as f64,
        };
        assert!(is_in_core(&g, &[1.0, 1.0, 1.0, 1.0], 1e-9));
        // Inefficient allocation fails.
        assert!(!is_in_core(&g, &[1.0, 1.0, 1.0, 0.5], 1e-9));
        // Efficient but coalition-irrational allocation fails.
        assert!(!is_in_core(&g, &[4.0, 0.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn shapley_in_core_of_supermodular_game() {
        // Theorem 8's flavor: convex games have their Shapley value in
        // the core.
        let g = quadratic(6);
        assert!(is_supermodular(&g));
        let shap = crate::shapley::shapley_exact(&g);
        assert!(is_in_core(&g, &shap.values, 1e-6));
    }

    #[test]
    fn diminishing_coalition_saturates() {
        // The paper's qualitative point: with a saturating value
        // function, supermodularity fails once the coalition covers the
        // important members.
        let g = FnGame {
            n: 6,
            f: |m: u32| 1.0 - 0.5f64.powi(m.count_ones() as i32),
        };
        assert!(!is_supermodular(&g));
    }
}
