//! # economics — incentives for forming and keeping a brokerage coalition
//!
//! Section 7 of the paper argues the brokerage scheme is economically
//! viable alongside BGP by composing three game-theoretic pieces, all
//! implemented here:
//!
//! 1. **Nash bargaining** ([`bargain`]) between the broker set `B` and a
//!    non-broker *employee* AS hired to complete a dominating path
//!    (Theorem 5). For the paper's linear utilities the solution has the
//!    closed form `p_j* = p_B / ⌈β/2⌉`.
//! 2. **A Stackelberg pricing game** ([`stackelberg`]) between `B`
//!    (leader, sets the routing price) and customer ASes (followers,
//!    choose what fraction of traffic to route through the brokerage) —
//!    Theorem 6 guarantees an equilibrium, found here by backward
//!    induction with concave utility families.
//! 3. **Shapley-value revenue distribution** ([`shapley`]) inside `B`,
//!    with the superadditivity / supermodularity stability conditions of
//!    Theorems 7 and 8 checkable on any characteristic function
//!    ([`coalition`]).
//!
//! The crate is deliberately topology-agnostic: characteristic functions
//! and utility families are plain closures/structs, so the bench harness
//! wires in coverage-based coalition values from `brokerset` while the
//! unit tests use analytic fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bargain;
pub mod coalition;
pub mod revenue;
pub mod sensitivity;
pub mod shapley;
pub mod solver;
pub mod stackelberg;
pub mod validate;

pub use bargain::{nash_bargain, BargainConfig, BargainOutcome};
pub use coalition::{is_in_core, is_superadditive, is_supermodular, CharacteristicFn};
pub use revenue::{account_path, AggregateLedger, PathLedger, Tariff};
pub use sensitivity::{elasticity, sensitivity_profile, Elasticity, Knob};
pub use shapley::{shapley_exact, shapley_monte_carlo, ShapleyResult};
pub use stackelberg::{CustomerAs, StackelbergEquilibrium, StackelbergGame};
pub use validate::{AuditReport, BargainCertificate, ShapleyCertificate, Validate};
