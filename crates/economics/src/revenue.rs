//! Per-connection revenue accounting for the brokerage (Fig. 6 of the
//! paper: the payment flow).
//!
//! For one unit of traffic on a dominating path the alliance charges both
//! endpoints (`2 · p_B`), pays every hired non-broker employee the
//! bargained `p_j`, and bears its own per-hop routing cost `c` on the
//! broker-carried hops. This module turns path shapes (hops, employee
//! counts) into ledger entries; the topology side supplies the shapes
//! (e.g. `routing::StitchedPath::hired_employees`).

use serde::{Deserialize, Serialize};

/// Price/cost sheet of the alliance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tariff {
    /// Customer price per endpoint per unit traffic (`p_B`).
    pub broker_price: f64,
    /// Employee price per hired hop (`p_j`, from the Nash bargain).
    pub employee_price: f64,
    /// The alliance's own per-hop routing cost (`c`).
    pub hop_cost: f64,
}

impl Tariff {
    /// Validate the sheet.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("broker_price", self.broker_price),
            ("employee_price", self.employee_price),
            ("hop_cost", self.hop_cost),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Ledger entry for one unit of traffic on one path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLedger {
    /// Revenue collected from the two endpoints.
    pub revenue: f64,
    /// Paid out to hired employee ASes.
    pub employee_payout: f64,
    /// The alliance's own routing cost.
    pub routing_cost: f64,
    /// Net profit.
    pub profit: f64,
}

/// Account one unit of traffic over a path with `hops` edges of which
/// `employees` interior vertices are hired non-brokers.
///
/// # Panics
///
/// Panics if the tariff is invalid or `employees + 1 > hops` on a
/// multi-hop path (more hired relays than interior positions).
pub fn account_path(tariff: &Tariff, hops: usize, employees: usize) -> PathLedger {
    if let Err(e) = tariff.validate() {
        panic!("invalid tariff: {e}");
    }
    if hops > 0 {
        assert!(
            employees <= hops.saturating_sub(1),
            "{employees} employees cannot sit on a {hops}-hop path"
        );
    } else {
        assert_eq!(employees, 0, "zero-hop path cannot hire employees");
    }
    let revenue = 2.0 * tariff.broker_price;
    let employee_payout = employees as f64 * tariff.employee_price;
    // Broker-carried hops: total hops minus the employee-adjacent ones
    // (each employee relays across its own vertex, one hop of cost is
    // theirs).
    let broker_hops = hops.saturating_sub(employees);
    let routing_cost = broker_hops as f64 * tariff.hop_cost;
    PathLedger {
        revenue,
        employee_payout,
        routing_cost,
        profit: revenue - employee_payout - routing_cost,
    }
}

/// Aggregate ledger over many paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AggregateLedger {
    /// Paths accounted.
    pub paths: usize,
    /// Total revenue.
    pub revenue: f64,
    /// Total employee payouts.
    pub employee_payout: f64,
    /// Total routing cost.
    pub routing_cost: f64,
    /// Total profit.
    pub profit: f64,
}

impl AggregateLedger {
    /// Fold one path into the aggregate.
    pub fn add(&mut self, entry: PathLedger) {
        self.paths += 1;
        self.revenue += entry.revenue;
        self.employee_payout += entry.employee_payout;
        self.routing_cost += entry.routing_cost;
        self.profit += entry.profit;
    }

    /// Mean profit per path (`None` when empty).
    pub fn mean_profit(&self) -> Option<f64> {
        (self.paths > 0).then(|| self.profit / self.paths as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tariff() -> Tariff {
        Tariff {
            broker_price: 10.0,
            employee_price: 5.0,
            hop_cost: 1.0,
        }
    }

    #[test]
    fn broker_only_path_keeps_everything_minus_cost() {
        let l = account_path(&tariff(), 3, 0);
        assert_eq!(l.revenue, 20.0);
        assert_eq!(l.employee_payout, 0.0);
        assert_eq!(l.routing_cost, 3.0);
        assert_eq!(l.profit, 17.0);
    }

    #[test]
    fn employees_eat_into_profit() {
        let with = account_path(&tariff(), 4, 2);
        let without = account_path(&tariff(), 4, 0);
        assert!(with.profit < without.profit);
        assert_eq!(with.employee_payout, 10.0);
        assert_eq!(with.routing_cost, 2.0); // 4 hops - 2 employee hops
    }

    #[test]
    fn direct_connection() {
        let l = account_path(&tariff(), 1, 0);
        assert_eq!(l.profit, 20.0 - 1.0);
        let zero = account_path(&tariff(), 0, 0);
        assert_eq!(zero.profit, 20.0);
    }

    #[test]
    #[should_panic(expected = "cannot sit")]
    fn too_many_employees_rejected() {
        account_path(&tariff(), 2, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn invalid_tariff_rejected() {
        account_path(
            &Tariff {
                broker_price: -1.0,
                employee_price: 0.0,
                hop_cost: 0.0,
            },
            1,
            0,
        );
    }

    #[test]
    fn aggregate_folds() {
        let mut agg = AggregateLedger::default();
        assert!(agg.mean_profit().is_none());
        agg.add(account_path(&tariff(), 2, 0));
        agg.add(account_path(&tariff(), 4, 1));
        assert_eq!(agg.paths, 2);
        assert!((agg.revenue - 40.0).abs() < 1e-12);
        assert!(agg.mean_profit().unwrap() > 0.0);
    }

    proptest! {
        /// Ledger identity: revenue − payouts − costs = profit, and the
        /// bargained price keeps per-path profit positive whenever the
        /// Nash agreement held.
        #[test]
        fn ledger_identity(hops in 1usize..10, emp_frac in 0.0f64..1.0) {
            let employees = ((hops - 1) as f64 * emp_frac) as usize;
            let l = account_path(&tariff(), hops, employees);
            prop_assert!((l.revenue - l.employee_payout - l.routing_cost - l.profit).abs() < 1e-9);
        }

        /// Under the closed-form Nash price p_j = p_B/⌈β/2⌉ and paths no
        /// longer than β, the alliance never loses money on a path when
        /// p_B covers the worst-case hop costs.
        #[test]
        fn nash_priced_paths_profitable(beta in 2usize..7, hops in 1usize..7) {
            prop_assume!(hops <= beta);
            let m = beta.div_ceil(2) as f64;
            let p_b = 10.0;
            let c = 0.5;
            let t = Tariff { broker_price: p_b, employee_price: p_b / m, hop_cost: c };
            // Worst case: every interior vertex is an employee.
            let employees = (hops - 1).min(beta.div_ceil(2));
            let l = account_path(&t, hops, employees);
            prop_assert!(l.profit > 0.0, "loss {l:?}");
        }
    }
}
