//! Nash bargaining between the broker set and a hired employee AS
//! (Section 7.1, Theorem 5).
//!
//! When a dominating path needs a non-broker hop, `B` hires that AS and
//! they bargain over the per-unit-traffic price `p_j`. With the paper's
//! utilities
//!
//! - employee: `u_e = p_j − c`
//! - broker set (worst case, hiring `m = ⌈β/2⌉` employees):
//!   `u_B = 2·p_B − m·p_j − m·c`
//!
//! the Nash product `(u_e)(u_B)` is a concave parabola in `p_j`, giving
//! the closed form `p_j* = p_B / m`. The numeric path (golden section) is
//! kept alongside and property-tested against the closed form.

use crate::solver::golden_max;
use serde::{Deserialize, Serialize};

/// Parameters of the employee bargaining problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BargainConfig {
    /// Price `B` charges its customers per unit traffic (`p_B`).
    pub broker_price: f64,
    /// Per-AS cost of routing one unit of traffic (`c`).
    pub routing_cost: f64,
    /// The β of the (α, β)-graph: the employee assumes at most `⌈β/2⌉`
    /// employees are hired on the path.
    pub beta: usize,
}

impl BargainConfig {
    /// `m = ⌈β/2⌉`, the employee's worst-case head count.
    pub fn max_employees(&self) -> usize {
        self.beta.div_ceil(2).max(1)
    }

    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.broker_price.is_finite() && self.broker_price > 0.0) {
            return Err(format!(
                "broker_price must be positive, got {}",
                self.broker_price
            ));
        }
        if !(self.routing_cost.is_finite() && self.routing_cost >= 0.0) {
            return Err(format!(
                "routing_cost must be non-negative, got {}",
                self.routing_cost
            ));
        }
        if self.beta == 0 {
            return Err("beta must be positive".into());
        }
        Ok(())
    }
}

/// Outcome of the bargaining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BargainOutcome {
    /// Agreed employee price `p_j*`.
    pub employee_price: f64,
    /// Employee surplus `u_e = p_j* − c`.
    pub employee_utility: f64,
    /// Broker-set surplus `u_B` at the agreement.
    pub broker_utility: f64,
    /// Whether the gains from trade are positive (both utilities > 0);
    /// when `false` no mutually beneficial agreement exists and the pair
    /// falls back to BGP.
    pub agreement: bool,
}

/// Solve the Nash bargaining problem.
///
/// # Errors
///
/// Returns the validation error for inconsistent configurations.
pub fn nash_bargain(cfg: &BargainConfig) -> Result<BargainOutcome, String> {
    cfg.validate()?;
    let m = cfg.max_employees() as f64;
    let c = cfg.routing_cost;
    let pb = cfg.broker_price;
    // Closed form: argmax (p - c)(2 pb - m p - m c) = pb / m... derived by
    // setting the derivative 2 pb - 2 m p = 0.
    let p_star = pb / m;
    let employee_utility = p_star - c;
    let broker_utility = 2.0 * pb - m * p_star - m * c;
    let outcome = BargainOutcome {
        employee_price: p_star,
        employee_utility,
        broker_utility,
        agreement: employee_utility > 0.0 && broker_utility > 0.0,
    };
    netgraph::validate::debug_validate(&crate::validate::BargainCertificate::new(cfg, &outcome));
    Ok(outcome)
}

/// Numeric solution via golden-section on the Nash product, for use with
/// perturbed utility shapes; exposed mainly for the ablation bench and
/// the equivalence test against [`nash_bargain`].
pub fn nash_bargain_numeric(cfg: &BargainConfig) -> Result<BargainOutcome, String> {
    cfg.validate()?;
    let m = cfg.max_employees() as f64;
    let c = cfg.routing_cost;
    let pb = cfg.broker_price;
    // Feasible prices: employee needs p > c; broker needs u_B >= 0, i.e.
    // p <= (2 pb - m c) / m. If the interval is empty there is no trade.
    let hi = (2.0 * pb - m * c) / m;
    if hi <= c {
        return Ok(BargainOutcome {
            employee_price: c,
            employee_utility: 0.0,
            broker_utility: 2.0 * pb - m * c - m * c,
            agreement: false,
        });
    }
    let nash = |p: f64| (p - c).max(0.0) * (2.0 * pb - m * p - m * c).max(0.0);
    let (p_star, _) = golden_max(c, hi, 1e-12 * (1.0 + hi.abs()), nash);
    let employee_utility = p_star - c;
    let broker_utility = 2.0 * pb - m * p_star - m * c;
    Ok(BargainOutcome {
        employee_price: p_star,
        employee_utility,
        broker_utility,
        agreement: employee_utility > 0.0 && broker_utility > 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_form_beta4() {
        // beta = 4 -> m = 2: p* = pb / 2.
        let out = nash_bargain(&BargainConfig {
            broker_price: 10.0,
            routing_cost: 1.0,
            beta: 4,
        })
        .unwrap();
        assert!((out.employee_price - 5.0).abs() < 1e-12);
        assert!((out.employee_utility - 4.0).abs() < 1e-12);
        assert!((out.broker_utility - (20.0 - 10.0 - 2.0)).abs() < 1e-12);
        assert!(out.agreement);
    }

    #[test]
    fn no_agreement_when_cost_too_high() {
        // c >= pb / m kills the employee surplus.
        let out = nash_bargain(&BargainConfig {
            broker_price: 2.0,
            routing_cost: 5.0,
            beta: 4,
        })
        .unwrap();
        assert!(!out.agreement);
    }

    #[test]
    fn validation_errors() {
        assert!(nash_bargain(&BargainConfig {
            broker_price: -1.0,
            routing_cost: 0.0,
            beta: 4
        })
        .is_err());
        assert!(nash_bargain(&BargainConfig {
            broker_price: 1.0,
            routing_cost: -0.5,
            beta: 4
        })
        .is_err());
        assert!(nash_bargain(&BargainConfig {
            broker_price: 1.0,
            routing_cost: 0.5,
            beta: 0
        })
        .is_err());
    }

    #[test]
    fn beta_odd_rounds_up() {
        let cfg = BargainConfig {
            broker_price: 9.0,
            routing_cost: 0.0,
            beta: 5,
        };
        assert_eq!(cfg.max_employees(), 3);
        let out = nash_bargain(&cfg).unwrap();
        assert!((out.employee_price - 3.0).abs() < 1e-12);
    }

    proptest! {
        /// Numeric and closed-form solutions agree whenever trade is
        /// feasible.
        #[test]
        fn numeric_matches_closed_form(
            pb in 0.5f64..100.0,
            c in 0.0f64..10.0,
            beta in 1usize..9,
        ) {
            let cfg = BargainConfig { broker_price: pb, routing_cost: c, beta };
            let a = nash_bargain(&cfg).unwrap();
            let b = nash_bargain_numeric(&cfg).unwrap();
            prop_assert_eq!(a.agreement, b.agreement);
            if a.agreement {
                prop_assert!((a.employee_price - b.employee_price).abs() < 1e-5 * (1.0 + pb),
                    "closed {} vs numeric {}", a.employee_price, b.employee_price);
            }
        }

        /// At the bargain, splitting is efficient: employee price always
        /// sits strictly between cost and what the broker earns per unit.
        #[test]
        fn price_between_cost_and_revenue(pb in 0.5f64..100.0, beta in 1usize..9) {
            let cfg = BargainConfig { broker_price: pb, routing_cost: 0.0, beta };
            let out = nash_bargain(&cfg).unwrap();
            prop_assert!(out.employee_price > 0.0);
            prop_assert!(out.employee_price <= pb + 1e-12);
        }
    }
}
