//! Shapley-value revenue distribution inside the broker set
//! (Section 7.2, Eq. 13).
//!
//! `φ_j(B) = (1/|B|!) Σ_π Δ_j(B(π, j))` — the average marginal
//! contribution of `j` over all orderings. [`shapley_exact`] evaluates
//! the equivalent subset-weighted sum in `O(2^n · n)` (fine to ~20
//! players); [`shapley_monte_carlo`] samples permutations, the
//! approximation route the paper cites (refs \[35\], \[37\]), with a standard
//! error estimate per player.

use crate::coalition::CharacteristicFn;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shapley values with diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapleyResult {
    /// Per-player Shapley value `φ_j`.
    pub values: Vec<f64>,
    /// Per-player one-sigma error (0 for exact evaluation).
    pub std_errors: Vec<f64>,
    /// Permutations evaluated (`n!` conceptually for exact; the sample
    /// count for Monte Carlo).
    pub permutations: u64,
}

impl ShapleyResult {
    /// Efficiency check: `Σ φ_j = U(N)` within `tol`.
    pub fn is_efficient<G: CharacteristicFn>(&self, game: &G, tol: f64) -> bool {
        let total: f64 = self.values.iter().sum();
        let grand = game.value((1u32 << game.players()) - 1);
        (total - grand).abs() <= tol
    }
}

/// Exact Shapley values via the subset formula
/// `φ_j = Σ_{S ∌ j} |S|! (n−|S|−1)! / n! · Δ_j(S)`.
///
/// # Panics
///
/// Panics for games with more than 20 players (use
/// [`shapley_monte_carlo`]).
pub fn shapley_exact<G: CharacteristicFn>(game: &G) -> ShapleyResult {
    let n = game.players();
    assert!(n >= 1, "need at least one player");
    assert!(n <= 20, "exact Shapley capped at 20 players, got {n}");
    let () = netgraph::counter!("shapley.exact_runs");
    let () = netgraph::counter!("shapley.coalitions_scanned", 1u64 << n);
    // Precompute |S|-dependent weights: w(s) = s! (n-s-1)! / n!.
    let mut log_fact = vec![0.0f64; n + 1];
    for i in 1..=n {
        log_fact[i] = log_fact[i - 1] + (i as f64).ln();
    }
    let weight = |s: usize| -> f64 { (log_fact[s] + log_fact[n - s - 1] - log_fact[n]).exp() };
    let full = (1u32 << n) - 1;
    let mut values = vec![0.0f64; n];
    for s_mask in 0..=full {
        let s = s_mask.count_ones() as usize;
        let v_s = game.value(s_mask);
        for (j, value) in values.iter_mut().enumerate() {
            let bj = 1u32 << j;
            if s_mask & bj != 0 {
                continue;
            }
            *value += weight(s) * (game.value(s_mask | bj) - v_s);
        }
    }
    let mut permutations = 1u64;
    for i in 1..=n as u64 {
        permutations = permutations.saturating_mul(i);
    }
    let result = ShapleyResult {
        std_errors: vec![0.0; n],
        values,
        permutations,
    };
    netgraph::validate::debug_validate(&crate::validate::ShapleyCertificate::new(game, &result));
    result
}

/// Monte Carlo Shapley: average marginal contributions over `samples`
/// uniformly random permutations.
///
/// # Panics
///
/// Panics if `samples == 0` or the game has more than 31 players
/// (bitmask encoding).
pub fn shapley_monte_carlo<G: CharacteristicFn, R: Rng>(
    game: &G,
    samples: usize,
    rng: &mut R,
) -> ShapleyResult {
    let n = game.players();
    assert!(samples > 0, "need at least one sample");
    assert!((1..32).contains(&n), "player count {n} outside 1..32");
    let mut sums = vec![0.0f64; n];
    let mut sq_sums = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..samples {
        order.shuffle(rng);
        let mut mask = 0u32;
        let mut prev = game.value(0);
        for &j in &order {
            mask |= 1u32 << j;
            let cur = game.value(mask);
            let delta = cur - prev;
            sums[j] += delta;
            sq_sums[j] += delta * delta;
            prev = cur;
        }
    }
    let m = samples as f64;
    let values: Vec<f64> = sums.iter().map(|&s| s / m).collect();
    let std_errors: Vec<f64> = values
        .iter()
        .zip(&sq_sums)
        .map(|(&mean, &sq)| {
            let var = (sq / m - mean * mean).max(0.0);
            (var / m).sqrt()
        })
        .collect();
    ShapleyResult {
        values,
        std_errors,
        permutations: samples as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalition::{FnGame, TableGame};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn glove_game() {
        // Classic: players 0, 1 own left gloves, player 2 a right glove;
        // a pair is worth 1. φ = (1/6, 1/6, 4/6).
        let g = FnGame {
            n: 3,
            f: |m: u32| {
                let lefts = (m & 0b011).count_ones().min(1);
                let rights = (m >> 2) & 1;
                (lefts.min(rights)) as f64
            },
        };
        let r = shapley_exact(&g);
        assert!((r.values[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((r.values[1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((r.values[2] - 4.0 / 6.0).abs() < 1e-12);
        assert!(r.is_efficient(&g, 1e-12));
        assert_eq!(r.permutations, 6);
    }

    #[test]
    fn additive_game_gives_individual_values() {
        // U(S) = Σ w_j: φ_j = w_j.
        let w = [1.0, 2.5, 4.0, 0.5];
        let g = FnGame {
            n: 4,
            f: move |m: u32| (0..4).filter(|&j| m >> j & 1 == 1).map(|j| w[j]).sum(),
        };
        let r = shapley_exact(&g);
        for (j, &wj) in w.iter().enumerate() {
            assert!((r.values[j] - wj).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        // Symmetric players get equal shares.
        let g = FnGame {
            n: 5,
            f: |m: u32| (m.count_ones() as f64).powi(2),
        };
        let r = shapley_exact(&g);
        for w in r.values.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
        // Efficiency: sum = 25.
        assert!(r.is_efficient(&g, 1e-9));
    }

    #[test]
    fn single_player() {
        let g = TableGame::new(vec![0.0, 7.0]);
        let r = shapley_exact(&g);
        assert_eq!(r.values, vec![7.0]);
    }

    #[test]
    fn monte_carlo_close_to_exact() {
        let g = FnGame {
            n: 8,
            f: |m: u32| {
                // Weighted coverage-ish game with diminishing returns.
                let c = m.count_ones() as f64;
                10.0 * (1.0 - (-0.4 * c).exp()) + (m & 0b1) as f64
            },
        };
        let exact = shapley_exact(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mc = shapley_monte_carlo(&g, 6000, &mut rng);
        for j in 0..8 {
            assert!(
                (exact.values[j] - mc.values[j]).abs() < 0.06,
                "player {j}: exact {} vs mc {}",
                exact.values[j],
                mc.values[j]
            );
            assert!(mc.std_errors[j] >= 0.0);
        }
        assert!(mc.is_efficient(&g, 0.2));
    }

    #[test]
    #[should_panic(expected = "capped at 20")]
    fn exact_rejects_large_games() {
        let g = FnGame { n: 21, f: |_| 0.0 };
        shapley_exact(&g);
    }

    proptest! {
        /// Efficiency holds exactly for random table games.
        #[test]
        fn efficiency_random_games(vals in proptest::collection::vec(0.0f64..10.0, 7)) {
            // 3-player table (8 entries), U(empty)=0.
            let mut table = vec![0.0];
            table.extend(vals);
            let g = TableGame::new(table);
            let r = shapley_exact(&g);
            prop_assert!(r.is_efficient(&g, 1e-9));
        }

        /// Theorem 7: under superadditivity, φ_j >= U({j}).
        #[test]
        fn individual_rationality_when_superadditive(seed in 0u64..200) {
            // Build a random supermodular-ish game: U(S) = (Σ w)^1.5.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let w: Vec<f64> = (0..5).map(|_| rand::Rng::gen_range(&mut rng, 0.1..2.0)).collect();
            let wc = w.clone();
            let g = FnGame {
                n: 5,
                f: move |m: u32| {
                    let s: f64 = (0..5).filter(|&j| m >> j & 1 == 1).map(|j| wc[j]).sum();
                    s.powf(1.5)
                },
            };
            prop_assume!(crate::coalition::is_superadditive(&g));
            let r = shapley_exact(&g);
            for j in 0..5 {
                prop_assert!(r.values[j] >= g.value(1 << j) - 1e-9,
                    "player {j} below standalone value");
            }
        }
    }
}
