//! Game-theoretic solution certificates ([`Validate`] impls).
//!
//! The solvers in this crate return numbers whose correctness is
//! checkable much more cheaply than it is computable: Shapley values must
//! be *efficient* (sum to the grand-coalition value) and Nash bargaining
//! outcomes must satisfy the utility definitions they were derived from.
//! The certificates here re-derive those identities from the raw inputs,
//! independent of the solver code paths.

use crate::bargain::{BargainConfig, BargainOutcome};
use crate::coalition::CharacteristicFn;
use crate::shapley::ShapleyResult;

pub use netgraph::{debug_validate, AuditReport, Finding, Validate};

/// A claim that `result` carries the Shapley values of `game`.
#[derive(Debug)]
pub struct ShapleyCertificate<'a, G> {
    game: &'a G,
    result: &'a ShapleyResult,
}

impl<'a, G: CharacteristicFn> ShapleyCertificate<'a, G> {
    /// Pair a solver output with the game it solves.
    pub fn new(game: &'a G, result: &'a ShapleyResult) -> Self {
        ShapleyCertificate { game, result }
    }
}

impl<G: CharacteristicFn> Validate for ShapleyCertificate<'_, G> {
    /// Check the axioms that hold for any correct evaluation:
    ///
    /// 1. one value (and one error bar) per player;
    /// 2. all numbers finite, error bars non-negative;
    /// 3. efficiency: `Σ φ_j = U(N)` (Eq. 13 distributes the whole
    ///    revenue — the property Theorem 7's stability argument needs).
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("economics::ShapleyCertificate");
        let n = self.game.players();
        let r = self.result;
        rep.check("shapley.values-cover", r.values.len() == n, || {
            format!("{} values for {n} players", r.values.len())
        });
        rep.check("shapley.errors-cover", r.std_errors.len() == n, || {
            format!("{} std errors for {n} players", r.std_errors.len())
        });
        let bad_values = r.values.iter().filter(|v| !v.is_finite()).count();
        rep.check("shapley.values-finite", bad_values == 0, || {
            format!("{bad_values} non-finite values")
        });
        let bad_errs = r
            .std_errors
            .iter()
            .filter(|e| !(e.is_finite() && **e >= 0.0))
            .count();
        rep.check("shapley.errors-sane", bad_errs == 0, || {
            format!("{bad_errs} negative or non-finite std errors")
        });
        rep.check("shapley.permutations-positive", r.permutations > 0, || {
            "zero permutations claimed".into()
        });
        if r.values.len() == n && bad_values == 0 {
            let grand = self.game.value((1u32 << n) - 1);
            // Exact evaluation is numerically tight; Monte Carlo drifts,
            // so widen the tolerance by the reported error bars.
            let slack: f64 = r.std_errors.iter().map(|e| e.abs()).sum::<f64>() * 6.0;
            let tol = 1e-9 * (1.0 + grand.abs()) + slack;
            rep.check("shapley.efficient", r.is_efficient(self.game, tol), || {
                let total: f64 = r.values.iter().sum();
                format!("Σφ = {total}, U(N) = {grand}, tol = {tol}")
            });
        }
        rep
    }
}

/// A claim that `outcome` solves the bargaining problem `cfg`.
#[derive(Debug)]
pub struct BargainCertificate<'a> {
    cfg: &'a BargainConfig,
    outcome: &'a BargainOutcome,
}

impl<'a> BargainCertificate<'a> {
    /// Pair a bargaining outcome with its configuration.
    pub fn new(cfg: &'a BargainConfig, outcome: &'a BargainOutcome) -> Self {
        BargainCertificate { cfg, outcome }
    }
}

impl Validate for BargainCertificate<'_> {
    /// Re-derive the utility identities both the closed-form and the
    /// numeric solver must satisfy at whatever price they settled on:
    ///
    /// 1. `u_e = p_j − c` and `u_B = 2 p_B − m p_j − m c` (Section 7.1);
    /// 2. the `agreement` flag equals "both utilities positive";
    /// 3. on agreement, the price maximizes the Nash product:
    ///    `p_j* = p_B / m` (Theorem 5's closed form, loose tolerance to
    ///    admit the golden-section solver).
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("economics::BargainCertificate");
        let o = self.outcome;
        let m = self.cfg.max_employees() as f64;
        let c = self.cfg.routing_cost;
        let pb = self.cfg.broker_price;
        let finite = o.employee_price.is_finite()
            && o.employee_utility.is_finite()
            && o.broker_utility.is_finite();
        rep.check("bargain.finite", finite, || {
            format!(
                "p = {}, u_e = {}, u_B = {}",
                o.employee_price, o.employee_utility, o.broker_utility
            )
        });
        if !finite {
            return rep;
        }
        let scale = 1.0 + pb.abs() + m * c.abs();
        let tol = 1e-9 * scale;
        let u_e = o.employee_price - c;
        rep.check(
            "bargain.employee-utility",
            (o.employee_utility - u_e).abs() <= tol,
            || format!("claimed u_e = {}, recomputed {}", o.employee_utility, u_e),
        );
        let u_b = 2.0 * pb - m * o.employee_price - m * c;
        rep.check(
            "bargain.broker-utility",
            (o.broker_utility - u_b).abs() <= tol,
            || format!("claimed u_B = {}, recomputed {}", o.broker_utility, u_b),
        );
        let both_positive = o.employee_utility > 0.0 && o.broker_utility > 0.0;
        rep.check(
            "bargain.agreement-flag",
            o.agreement == both_positive,
            || {
                format!(
                    "agreement = {}, but utilities are ({}, {})",
                    o.agreement, o.employee_utility, o.broker_utility
                )
            },
        );
        if o.agreement {
            let p_star = pb / m;
            let num_tol = 1e-5 * scale;
            rep.check(
                "bargain.nash-optimal",
                (o.employee_price - p_star).abs() <= num_tol,
                || format!("price {} vs closed form p_B/m = {p_star}", o.employee_price),
            );
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bargain::{nash_bargain, nash_bargain_numeric};
    use crate::coalition::TableGame;
    use crate::shapley::{shapley_exact, shapley_monte_carlo};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn three_player_game() -> TableGame {
        // v(S) = |S|^2, superadditive.
        TableGame::new((0u32..8).map(|m| (m.count_ones() as f64).powi(2)).collect())
    }

    #[test]
    fn exact_shapley_certifies() {
        let game = three_player_game();
        let result = shapley_exact(&game);
        let rep = ShapleyCertificate::new(&game, &result).audit();
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn monte_carlo_shapley_certifies() {
        let game = three_player_game();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let result = shapley_monte_carlo(&game, 400, &mut rng);
        let rep = ShapleyCertificate::new(&game, &result).audit();
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn tampered_shapley_rejected() {
        let game = three_player_game();
        let mut result = shapley_exact(&game);
        result.values[0] += 1.0;
        let rep = ShapleyCertificate::new(&game, &result).audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "shapley.efficient"),
            "{rep}"
        );
    }

    #[test]
    fn bargain_outcomes_certify() {
        let cfg = BargainConfig {
            broker_price: 10.0,
            routing_cost: 1.0,
            beta: 4,
        };
        for outcome in [
            nash_bargain(&cfg).expect("valid cfg"),
            nash_bargain_numeric(&cfg).expect("valid cfg"),
        ] {
            let rep = BargainCertificate::new(&cfg, &outcome).audit();
            assert!(rep.is_ok(), "{rep}");
        }
    }

    #[test]
    fn tampered_bargain_rejected() {
        let cfg = BargainConfig {
            broker_price: 10.0,
            routing_cost: 1.0,
            beta: 4,
        };
        let mut outcome = nash_bargain(&cfg).expect("valid cfg");
        outcome.employee_price *= 2.0;
        let rep = BargainCertificate::new(&cfg, &outcome).audit();
        assert!(!rep.is_ok(), "{rep}");
    }

    #[test]
    fn no_trade_case_certifies() {
        // Cost so high the surplus is negative: agreement must be false
        // and the certificate must accept the no-trade outcome.
        let cfg = BargainConfig {
            broker_price: 1.0,
            routing_cost: 5.0,
            beta: 6,
        };
        let outcome = nash_bargain(&cfg).expect("valid cfg");
        assert!(!outcome.agreement);
        let rep = BargainCertificate::new(&cfg, &outcome).audit();
        assert!(rep.is_ok(), "{rep}");
    }
}
