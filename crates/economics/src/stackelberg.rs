//! The Stackelberg pricing game between the broker set and customer ASes
//! (Section 7.1, Theorem 6).
//!
//! `B` (the leader) posts a routing price `p_B`; every non-broker AS `i`
//! (follower) picks the fraction `a_i ∈ [a_0, 1]` of its traffic routed
//! through the brokerage, maximizing
//!
//! `u_i(a_i) = V_i(a_i) + P_i(a_i) − p_B · a_i`
//!
//! where `V_i` (end-user revenue from improved QoS) is concave increasing
//! and `P_i` (net transit payments shifted away from BGP neighbors) is
//! concave, rising on `[a_0, â_i]` and falling back to `P_i(1) = 0`.
//! The leader maximizes `u_B(p_B) = 2 p_B α(p_B) − C(α(p_B))` with
//! `α = Σ_i a_i`.
//!
//! Equilibria are computed by backward induction: the follower best
//! responses have unique solutions (strict concavity), found by bisection
//! on the derivative; the leader's profit is then scanned and refined by
//! golden section.

use crate::solver::{bisect_decreasing, grid_then_golden};
use serde::{Deserialize, Serialize};

/// A customer (follower) AS in the pricing game.
///
/// Utility: `u(a) = v·ln(1 + g·a) + ρ·(1 − ((a − â)/(1 − â))²) − p·a`.
/// The first term is `V` (concave increasing, diminishing returns), the
/// second is `P` (concave, peaks at `â`, zero at `a = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CustomerAs {
    /// Revenue scale `v` of QoS-sensitive end users.
    pub qos_revenue: f64,
    /// Saturation rate `g` of the QoS revenue.
    pub qos_saturation: f64,
    /// Transit-payment scale `ρ` (how much BGP spend can be displaced).
    pub transit_scale: f64,
    /// Peak `â ∈ [a_floor, 1)` of the payment-displacement curve.
    pub transit_peak: f64,
    /// Legacy adoption floor `a_0` (the traffic already in schemes
    /// equivalent to brokerage routing).
    pub adoption_floor: f64,
}

impl CustomerAs {
    /// Validate parameters.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.qos_revenue.is_finite() && self.qos_revenue >= 0.0) {
            return Err("qos_revenue must be non-negative".into());
        }
        if !(self.qos_saturation.is_finite() && self.qos_saturation > 0.0) {
            return Err("qos_saturation must be positive".into());
        }
        if !(self.transit_scale.is_finite() && self.transit_scale >= 0.0) {
            return Err("transit_scale must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.transit_peak) {
            return Err(format!(
                "transit_peak must be in [0, 1), got {}",
                self.transit_peak
            ));
        }
        if !(0.0..=1.0).contains(&self.adoption_floor) {
            return Err("adoption_floor must be in [0, 1]".into());
        }
        Ok(())
    }

    /// `V(a) + P(a)` at adoption level `a`.
    pub fn gross_value(&self, a: f64) -> f64 {
        let v = self.qos_revenue * (1.0 + self.qos_saturation * a).ln();
        let t = (a - self.transit_peak) / (1.0 - self.transit_peak);
        let p = self.transit_scale * (1.0 - t * t);
        v + p
    }

    /// Follower utility at adoption `a` and price `p`.
    pub fn utility(&self, a: f64, price: f64) -> f64 {
        self.gross_value(a) - price * a
    }

    /// d/da of the utility (strictly decreasing in `a`).
    fn utility_slope(&self, a: f64, price: f64) -> f64 {
        let v = self.qos_revenue * self.qos_saturation / (1.0 + self.qos_saturation * a);
        let denom = (1.0 - self.transit_peak) * (1.0 - self.transit_peak);
        let p = -2.0 * self.transit_scale * (a - self.transit_peak) / denom;
        v + p - price
    }

    /// The unique best-response adoption `a*(p)` on `[a_0, 1]`.
    pub fn best_response(&self, price: f64) -> f64 {
        bisect_decreasing(self.adoption_floor, 1.0, 1e-10, |a| {
            self.utility_slope(a, price)
        })
    }
}

/// The full game: a leader cost model plus the follower population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackelbergGame {
    /// Follower ASes.
    pub customers: Vec<CustomerAs>,
    /// Leader's marginal routing cost per unit of adopted traffic.
    pub unit_cost: f64,
    /// Leader's per-unit employee-hiring overhead (the expected share of
    /// dominating paths needing hired non-brokers, times their price).
    pub hire_overhead: f64,
    /// Price ceiling `p̄_B` (regulatory or competitive cap).
    pub max_price: f64,
}

/// Equilibrium of the pricing game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackelbergEquilibrium {
    /// Leader's optimal price `p_B*`.
    pub price: f64,
    /// Follower adoptions `a_i*` at that price.
    pub adoptions: Vec<f64>,
    /// Aggregate adoption `α = Σ a_i`.
    pub total_adoption: f64,
    /// Leader profit at the equilibrium.
    pub leader_utility: f64,
    /// Follower utilities at the equilibrium.
    pub follower_utilities: Vec<f64>,
}

impl StackelbergGame {
    /// Validate the game definition.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.customers.is_empty() {
            return Err("need at least one customer".into());
        }
        for (i, c) in self.customers.iter().enumerate() {
            c.validate().map_err(|e| format!("customer {i}: {e}"))?;
        }
        if !(self.unit_cost.is_finite() && self.unit_cost >= 0.0) {
            return Err("unit_cost must be non-negative".into());
        }
        if !(self.hire_overhead.is_finite() && self.hire_overhead >= 0.0) {
            return Err("hire_overhead must be non-negative".into());
        }
        if !(self.max_price.is_finite() && self.max_price > 0.0) {
            return Err("max_price must be positive".into());
        }
        Ok(())
    }

    /// Aggregate adoption at a given price.
    pub fn total_adoption(&self, price: f64) -> f64 {
        self.customers.iter().map(|c| c.best_response(price)).sum()
    }

    /// Leader profit at a given price (backward-induced).
    pub fn leader_utility(&self, price: f64) -> f64 {
        let alpha = self.total_adoption(price);
        2.0 * price * alpha - (self.unit_cost + self.hire_overhead) * alpha
    }

    /// Solve for the Stackelberg equilibrium.
    ///
    /// # Errors
    ///
    /// Returns the validation error for inconsistent games.
    pub fn equilibrium(&self) -> Result<StackelbergEquilibrium, String> {
        self.validate()?;
        let (price, leader_utility) =
            grid_then_golden(0.0, self.max_price, 64, 1e-9, |p| self.leader_utility(p));
        let adoptions: Vec<f64> = self
            .customers
            .iter()
            .map(|c| c.best_response(price))
            .collect();
        let follower_utilities: Vec<f64> = self
            .customers
            .iter()
            .zip(&adoptions)
            .map(|(c, &a)| c.utility(a, price))
            .collect();
        let total_adoption = adoptions.iter().sum();
        Ok(StackelbergEquilibrium {
            price,
            adoptions,
            total_adoption,
            leader_utility,
            follower_utilities,
        })
    }
}

/// A convenience population: `n` homogeneous customers.
pub fn homogeneous_game(
    n: usize,
    customer: CustomerAs,
    unit_cost: f64,
    max_price: f64,
) -> StackelbergGame {
    StackelbergGame {
        customers: vec![customer; n],
        unit_cost,
        hire_overhead: 0.0,
        max_price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn customer() -> CustomerAs {
        CustomerAs {
            qos_revenue: 5.0,
            qos_saturation: 2.0,
            transit_scale: 1.0,
            transit_peak: 0.6,
            adoption_floor: 0.05,
        }
    }

    #[test]
    fn best_response_decreases_with_price() {
        let c = customer();
        let a_cheap = c.best_response(0.1);
        let a_mid = c.best_response(2.0);
        let a_expensive = c.best_response(50.0);
        assert!(a_cheap >= a_mid && a_mid >= a_expensive);
        assert!((c.adoption_floor..=1.0).contains(&a_cheap));
        // Prohibitive price pins adoption at the floor.
        assert!((a_expensive - c.adoption_floor).abs() < 1e-8);
    }

    #[test]
    fn free_service_gets_full_adoption() {
        // With price 0 and increasing V, the slope at a=1 is positive
        // when V dominates P's decline.
        let c = CustomerAs {
            qos_revenue: 50.0,
            ..customer()
        };
        assert!((c.best_response(0.0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn best_response_is_argmax() {
        // Compare against a dense scan.
        let c = customer();
        for price in [0.2, 1.0, 3.0, 7.0] {
            let a_star = c.best_response(price);
            let u_star = c.utility(a_star, price);
            for i in 0..=1000 {
                let a = c.adoption_floor + (1.0 - c.adoption_floor) * i as f64 / 1000.0;
                assert!(
                    c.utility(a, price) <= u_star + 1e-6,
                    "price {price}: utility({a}) beats best response"
                );
            }
        }
    }

    #[test]
    fn equilibrium_exists_and_profits() {
        let game = homogeneous_game(20, customer(), 0.5, 20.0);
        let eq = game.equilibrium().unwrap();
        assert!(eq.price > 0.0 && eq.price <= 20.0);
        assert!(
            eq.leader_utility > 0.0,
            "leader profit {}",
            eq.leader_utility
        );
        assert_eq!(eq.adoptions.len(), 20);
        assert!((eq.total_adoption - eq.adoptions.iter().sum::<f64>()).abs() < 1e-9);
        // Homogeneous followers behave identically.
        for w in eq.adoptions.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn leader_price_is_optimal_on_grid() {
        let game = homogeneous_game(5, customer(), 0.5, 10.0);
        let eq = game.equilibrium().unwrap();
        for i in 0..=200 {
            let p = 10.0 * i as f64 / 200.0;
            assert!(
                game.leader_utility(p) <= eq.leader_utility + 1e-6,
                "price {p} beats equilibrium"
            );
        }
    }

    #[test]
    fn higher_qos_value_raises_adoption() {
        // The paper's qualitative takeaway: when the brokerage covers
        // high-tier ISPs (=> more displaced transit spend and more QoS
        // gain), lower-tier ASes adopt more.
        let low = customer();
        let high = CustomerAs {
            qos_revenue: 12.0,
            transit_scale: 3.0,
            ..customer()
        };
        let game_low = homogeneous_game(10, low, 0.5, 20.0);
        let game_high = homogeneous_game(10, high, 0.5, 20.0);
        let eq_low = game_low.equilibrium().unwrap();
        let eq_high = game_high.equilibrium().unwrap();
        assert!(
            eq_high.total_adoption > eq_low.total_adoption,
            "high-value adoption {} should exceed {}",
            eq_high.total_adoption,
            eq_low.total_adoption
        );
    }

    #[test]
    fn validation_errors() {
        let mut g = homogeneous_game(1, customer(), 0.5, 10.0);
        g.customers.clear();
        assert!(g.validate().is_err());

        let mut bad = customer();
        bad.transit_peak = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = customer();
        bad.qos_saturation = 0.0;
        assert!(bad.validate().is_err());
        let mut g = homogeneous_game(1, customer(), -0.5, 10.0);
        assert!(g.validate().is_err());
        g = homogeneous_game(1, customer(), 0.5, 0.0);
        assert!(g.validate().is_err());
    }

    proptest! {
        /// Follower utility at the equilibrium never falls below the
        /// opt-out utility (keeping a = a_0): individual rationality.
        #[test]
        fn follower_rationality(
            v in 0.5f64..20.0,
            rho in 0.0f64..5.0,
            peak in 0.1f64..0.9,
        ) {
            let c = CustomerAs {
                qos_revenue: v,
                qos_saturation: 2.0,
                transit_scale: rho,
                transit_peak: peak,
                adoption_floor: 0.05,
            };
            let game = homogeneous_game(8, c, 0.3, 15.0);
            let eq = game.equilibrium().unwrap();
            for (i, &u) in eq.follower_utilities.iter().enumerate() {
                let opt_out = c.utility(c.adoption_floor, eq.price);
                prop_assert!(u >= opt_out - 1e-6, "follower {i}: {u} < opt-out {opt_out}");
            }
        }

        /// Aggregate adoption is non-increasing in price.
        #[test]
        fn adoption_monotone_in_price(v in 0.5f64..20.0, p1 in 0.0f64..10.0, p2 in 0.0f64..10.0) {
            let c = CustomerAs { qos_revenue: v, ..customer() };
            let game = homogeneous_game(4, c, 0.3, 15.0);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(game.total_adoption(lo) >= game.total_adoption(hi) - 1e-9);
        }
    }
}
