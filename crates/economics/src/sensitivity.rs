//! Comparative statics of the Stackelberg equilibrium.
//!
//! Theorem 6 gives existence; operators want to know *which way things
//! move*: if QoS willingness-to-pay rises, does the alliance raise
//! prices or chase adoption? This module computes finite-difference
//! elasticities of the equilibrium outcome with respect to the model
//! parameters.

use crate::stackelberg::{StackelbergEquilibrium, StackelbergGame};
use serde::{Deserialize, Serialize};

/// Which knob to perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    /// Every customer's `qos_revenue` scale.
    QosRevenue,
    /// Every customer's `transit_scale`.
    TransitScale,
    /// The leader's `unit_cost`.
    UnitCost,
    /// The leader's `hire_overhead`.
    HireOverhead,
}

/// Elasticities of the equilibrium with respect to one knob:
/// `d log(outcome) / d log(knob)` estimated by a symmetric ±`h` relative
/// perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Elasticity {
    /// Knob perturbed.
    pub knob: Knob,
    /// Elasticity of the equilibrium price.
    pub price: f64,
    /// Elasticity of the aggregate adoption.
    pub adoption: f64,
    /// Elasticity of the leader's profit.
    pub profit: f64,
}

fn perturbed(game: &StackelbergGame, knob: Knob, factor: f64) -> StackelbergGame {
    let mut g = game.clone();
    match knob {
        Knob::QosRevenue => {
            for c in &mut g.customers {
                c.qos_revenue *= factor;
            }
        }
        Knob::TransitScale => {
            for c in &mut g.customers {
                c.transit_scale *= factor;
            }
        }
        Knob::UnitCost => g.unit_cost *= factor,
        Knob::HireOverhead => g.hire_overhead *= factor,
    }
    g
}

fn log_ratio(hi: f64, lo: f64) -> f64 {
    if hi <= 0.0 || lo <= 0.0 {
        0.0
    } else {
        (hi / lo).ln()
    }
}

/// Estimate the elasticity of the equilibrium with respect to `knob`
/// using a symmetric relative step `h` (e.g. 0.05 = ±5 %).
///
/// # Errors
///
/// Propagates equilibrium-solving errors.
///
/// # Panics
///
/// Panics unless `0 < h < 1`.
pub fn elasticity(game: &StackelbergGame, knob: Knob, h: f64) -> Result<Elasticity, String> {
    assert!(h > 0.0 && h < 1.0, "step h must be in (0, 1), got {h}");
    let up = perturbed(game, knob, 1.0 + h).equilibrium()?;
    let down = perturbed(game, knob, 1.0 - h).equilibrium()?;
    let dlog_knob = ((1.0 + h) / (1.0 - h)).ln();
    let el = |f: &dyn Fn(&StackelbergEquilibrium) -> f64| log_ratio(f(&up), f(&down)) / dlog_knob;
    Ok(Elasticity {
        knob,
        price: el(&|e| e.price),
        adoption: el(&|e| e.total_adoption),
        profit: el(&|e| e.leader_utility),
    })
}

/// All four knob elasticities at once.
///
/// # Errors
///
/// Propagates equilibrium-solving errors.
pub fn sensitivity_profile(game: &StackelbergGame, h: f64) -> Result<Vec<Elasticity>, String> {
    [
        Knob::QosRevenue,
        Knob::TransitScale,
        Knob::UnitCost,
        Knob::HireOverhead,
    ]
    .into_iter()
    .map(|k| elasticity(game, k, h))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackelberg::CustomerAs;

    fn game() -> StackelbergGame {
        StackelbergGame {
            customers: vec![
                CustomerAs {
                    qos_revenue: 5.0,
                    qos_saturation: 2.0,
                    transit_scale: 1.2,
                    transit_peak: 0.6,
                    adoption_floor: 0.05,
                };
                30
            ],
            unit_cost: 0.5,
            hire_overhead: 0.3,
            max_price: 60.0,
        }
    }

    #[test]
    fn qos_value_raises_profit_and_price() {
        let e = elasticity(&game(), Knob::QosRevenue, 0.05).unwrap();
        assert!(e.profit > 0.0, "profit elasticity {e:?}");
        assert!(e.price > 0.0, "price elasticity {e:?}");
    }

    #[test]
    fn cost_lowers_profit() {
        let e = elasticity(&game(), Knob::UnitCost, 0.05).unwrap();
        assert!(e.profit < 0.0, "{e:?}");
        let e2 = elasticity(&game(), Knob::HireOverhead, 0.05).unwrap();
        assert!(e2.profit <= 0.0 + 1e-9, "{e2:?}");
    }

    #[test]
    fn profile_covers_all_knobs() {
        let p = sensitivity_profile(&game(), 0.05).unwrap();
        assert_eq!(p.len(), 4);
        let knobs: Vec<Knob> = p.iter().map(|e| e.knob).collect();
        assert!(knobs.contains(&Knob::QosRevenue));
        assert!(knobs.contains(&Knob::TransitScale));
        assert!(knobs.contains(&Knob::UnitCost));
        assert!(knobs.contains(&Knob::HireOverhead));
    }

    #[test]
    #[should_panic(expected = "step h")]
    fn bad_step_rejected() {
        let _ = elasticity(&game(), Knob::UnitCost, 1.5);
    }
}
