//! Axiomatic integration suite for the economics crate: the Shapley
//! axioms (efficiency, symmetry, dummy player, additivity) on small
//! coalitions, coalition-stability invariants (superadditive / convex
//! games, core membership), Nash bargaining closed-form invariants, and
//! the Stackelberg best-response fixed point.
//!
//! These pin the *contracts* of Section 7 of the paper (Theorems 5-8)
//! rather than implementation details, so they exercise only the public
//! API.

use economics::coalition::{marginal_contribution, FnGame, TableGame};
use economics::stackelberg::homogeneous_game;
use economics::{
    is_in_core, is_superadditive, is_supermodular, nash_bargain, shapley_exact, BargainConfig,
    CharacteristicFn, CustomerAs, StackelbergGame,
};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

/// A 3-player convex game: `U(S) = |S|^2` (supermodular, superadditive).
fn quadratic_game() -> FnGame<fn(u32) -> f64> {
    FnGame {
        n: 3,
        f: |mask: u32| {
            let k = mask.count_ones() as f64;
            k * k
        },
    }
}

#[test]
fn shapley_is_efficient_on_small_games() {
    // Efficiency axiom: shares exhaust the grand-coalition value.
    let g = quadratic_game();
    let sh = shapley_exact(&g);
    assert!(sh.is_efficient(&g, TOL));
    assert!((sh.values.iter().sum::<f64>() - 9.0).abs() < TOL);

    // Same check on an asymmetric dense table (4 players).
    let t = TableGame::new(
        (0u32..16)
            .map(|m| {
                let k = m.count_ones() as f64;
                // Player 0 is worth double wherever it appears.
                k + if m & 1 != 0 { k } else { 0.0 }
            })
            .collect(),
    );
    let sh = shapley_exact(&t);
    assert!(sh.is_efficient(&t, TOL));
}

#[test]
fn shapley_symmetry_gives_equal_shares() {
    // Symmetry axiom: interchangeable players receive identical values.
    // In U(S) = |S|^2 every player is symmetric with every other.
    let sh = shapley_exact(&quadratic_game());
    assert!((sh.values[0] - sh.values[1]).abs() < TOL);
    assert!((sh.values[1] - sh.values[2]).abs() < TOL);
    // Efficiency + symmetry pin the value exactly: 9 / 3.
    assert!((sh.values[0] - 3.0).abs() < TOL);
}

#[test]
fn shapley_dummy_player_gets_nothing() {
    // Dummy axiom: a player contributing zero to every coalition gets a
    // zero share. Player 2 below never changes the value.
    let g = FnGame {
        n: 3,
        f: |mask: u32| f64::from((mask & 0b11).count_ones()),
    };
    let sh = shapley_exact(&g);
    assert!(sh.values[2].abs() < TOL, "dummy share {}", sh.values[2]);
    assert!((sh.values[0] - 1.0).abs() < TOL);
    assert!((sh.values[1] - 1.0).abs() < TOL);
}

#[test]
fn shapley_is_additive_across_games() {
    // Additivity axiom: Sh(U + W) = Sh(U) + Sh(W) pointwise.
    let u = quadratic_game();
    let w = FnGame {
        n: 3,
        f: |mask: u32| if mask & 0b1 != 0 { 5.0 } else { 0.0 },
    };
    let sum = FnGame {
        n: 3,
        f: |mask: u32| {
            let k = mask.count_ones() as f64;
            k * k + if mask & 0b1 != 0 { 5.0 } else { 0.0 }
        },
    };
    let (su, sw, ss) = (shapley_exact(&u), shapley_exact(&w), shapley_exact(&sum));
    for j in 0..3 {
        assert!(
            (su.values[j] + sw.values[j] - ss.values[j]).abs() < TOL,
            "additivity fails for player {j}"
        );
    }
}

#[test]
fn convex_game_is_stable_and_shapley_is_in_core() {
    // Theorems 7 and 8: a convex (supermodular) game is superadditive,
    // and its Shapley value is a core allocation — no subcoalition can
    // profit by defecting from the brokerage.
    let g = quadratic_game();
    assert!(is_superadditive(&g));
    assert!(is_supermodular(&g));
    let sh = shapley_exact(&g);
    assert!(is_in_core(&g, &sh.values, 1e-6));
}

#[test]
fn non_convex_game_is_detected() {
    // U(S) = sqrt(|S|) is subadditive in increments: marginal
    // contributions shrink as coalitions grow, so supermodularity must
    // fail — the paper's "coalition stops growing" observation.
    let g = FnGame {
        n: 4,
        f: |mask: u32| f64::from(mask.count_ones()).sqrt(),
    };
    assert!(!is_supermodular(&g));
    // Its marginal contributions are indeed decreasing in coalition size.
    let d_small = marginal_contribution(&g, 0b0000, 3);
    let d_large = marginal_contribution(&g, 0b0111, 3);
    assert!(d_large < d_small);
    // Superadditivity still holds (sqrt is subadditive the right way
    // round: sqrt(a + b) >= ... is false in general, check concretely).
    assert!(is_superadditive(&FnGame {
        n: 3,
        f: |mask: u32| f64::from(mask.count_ones()) * 2.0,
    }));
}

#[test]
fn nash_bargain_matches_closed_form_invariants() {
    // Theorem 5: p* = p_B / m with m = ceil(beta / 2); both sides keep a
    // positive surplus whenever the employee's cost leaves room.
    let cfg = BargainConfig {
        broker_price: 12.0,
        routing_cost: 1.5,
        beta: 6, // m = 3
    };
    let out = nash_bargain(&cfg).expect("valid config bargains");
    assert!((out.employee_price - 4.0).abs() < TOL);
    assert!((out.employee_utility - (4.0 - 1.5)).abs() < TOL);
    // u_B = 2 p_B - m p* - m c = 24 - 12 - 4.5.
    assert!((out.broker_utility - 7.5).abs() < TOL);
    assert!(out.agreement);

    // The agreement flag flips exactly when the employee surplus dies:
    // c >= p_B / m.
    let no_deal = nash_bargain(&BargainConfig {
        broker_price: 12.0,
        routing_cost: 4.0,
        beta: 6,
    })
    .expect("valid config bargains");
    assert!(!no_deal.agreement);
}

#[test]
fn stackelberg_equilibrium_is_a_best_response_fixed_point() {
    // Theorem 6 (backward induction): at the equilibrium price every
    // follower's recorded adoption IS its best response, and no follower
    // can gain by deviating anywhere on [a_0, 1].
    let c = CustomerAs {
        qos_revenue: 6.0,
        qos_saturation: 2.0,
        transit_scale: 1.5,
        transit_peak: 0.5,
        adoption_floor: 0.05,
    };
    let game = homogeneous_game(6, c, 0.4, 15.0);
    let eq = game.equilibrium().expect("valid game has an equilibrium");

    for (i, (&a, cust)) in eq.adoptions.iter().zip(&game.customers).enumerate() {
        let br = cust.best_response(eq.price);
        assert!((a - br).abs() < 1e-8, "follower {i}: {a} vs best {br}");
        let u_star = cust.utility(a, eq.price);
        for step in 0..=400 {
            let alt = cust.adoption_floor + (1.0 - cust.adoption_floor) * step as f64 / 400.0;
            assert!(
                cust.utility(alt, eq.price) <= u_star + 1e-6,
                "follower {i} would deviate to a = {alt}"
            );
        }
    }
    // Leader consistency: reported profit equals the profit formula at
    // the reported price, and total adoption is the sum of adoptions.
    assert!((eq.leader_utility - game.leader_utility(eq.price)).abs() < 1e-8);
    assert!((eq.total_adoption - eq.adoptions.iter().sum::<f64>()).abs() < TOL);
}

#[test]
fn stackelberg_leader_cannot_improve_on_equilibrium_price() {
    let c = CustomerAs {
        qos_revenue: 6.0,
        qos_saturation: 2.0,
        transit_scale: 1.5,
        transit_peak: 0.5,
        adoption_floor: 0.05,
    };
    let game: StackelbergGame = homogeneous_game(4, c, 0.4, 12.0);
    let eq = game.equilibrium().expect("valid game has an equilibrium");
    for step in 0..=240 {
        let p = 12.0 * f64::from(step) / 240.0;
        assert!(
            game.leader_utility(p) <= eq.leader_utility + 1e-6,
            "price {p} beats the equilibrium"
        );
    }
}

proptest! {
    /// Shapley efficiency holds on arbitrary small table games: the
    /// axiom is unconditional, not a property of nice games.
    #[test]
    fn shapley_efficiency_on_random_tables(
        vals in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        let mut vals = vals;
        vals[0] = 0.0; // U(empty) = 0 by definition
        let g = TableGame::new(vals);
        let sh = shapley_exact(&g);
        prop_assert!(sh.is_efficient(&g, 1e-6));
        // Efficiency restated directly against the grand coalition.
        let full = (1u32 << g.players()) - 1;
        prop_assert!((sh.values.iter().sum::<f64>() - g.value(full)).abs() < 1e-6);
    }

    /// Nash bargaining agreement is monotone in the broker price: if a
    /// deal exists at p_B, it still exists at any higher p_B.
    #[test]
    fn bargain_agreement_monotone_in_broker_price(
        pb in 0.5f64..50.0,
        extra in 0.0f64..50.0,
        c in 0.0f64..10.0,
        beta in 1usize..9,
    ) {
        let lo = nash_bargain(&BargainConfig { broker_price: pb, routing_cost: c, beta })
            .expect("valid config");
        let hi = nash_bargain(&BargainConfig { broker_price: pb + extra, routing_cost: c, beta })
            .expect("valid config");
        if lo.agreement {
            prop_assert!(hi.agreement);
            prop_assert!(hi.employee_price >= lo.employee_price - 1e-12);
        }
    }
}
