//! Repo-specific static analysis for the broker-net workspace.
//!
//! `cargo run -p xtask -- lint` scans every workspace `.rs` file (the
//! vendored dependency stand-ins under `vendor/` are exempt) and enforces
//! the correctness rules the reproduction chain relies on:
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | R1   | library code of the product crates | no `.unwrap()` / `.expect(` — use the crate error types |
//! | R2   | everywhere outside `#[cfg(test)]`  | no non-seeded RNG (`thread_rng`, `rand::random`) |
//! | R3   | crate roots | `#![forbid(unsafe_code)]` present and a `//!` doc header first |
//! | R4   | library code of the product crates | no `println!` / `print!` / `dbg!` (output belongs to the bin/bench layer) |
//! | R5   | all comments | `TODO`/`FIXME` must cite an issue (`#123`) |
//! | R6   | library code of the product crates | no ad-hoc `VecDeque` BFS — traversal goes through `netgraph::traverse` (deliberately independent validators are allowlisted) |
//! | R7   | library code of the product crates | no hand-rolled word-manipulation loops (`count_ones` / `trailing_zeros` / `leading_zeros`) outside `netgraph/src/{msbfs,nodeset,obs}.rs` — consumers use `LaneSet` / `Wavefront` / `NodeSet` |
//! | R8   | library code of the product crates | no `std::time::Instant` outside `netgraph/src/obs.rs` — timing goes through the `span!` observability macro |
//! | R9   | library code of the product crates | no `HashMap`/`HashSet` iteration — `BTreeMap`/`BTreeSet` or sorted keys, so no RandomState order reaches a result |
//! | R10  | library code of the product crates | float reductions in threaded paths confined to the blessed chunk-ordered reducers (`par::map_reduce`, `par::sum_f64`) |
//! | R11  | library code of the product crates | `Ordering::Relaxed` confined to `netgraph/src/obs.rs` — everything else uses `SeqCst` |
//! | R12  | workspace symbol table | every pub constructor-bearing product type carries an `impl Validate` certificate |
//! | R13  | library code of the product crates | no `thread::spawn` / `thread::scope` / `thread::Builder` outside `netgraph/src/par.rs` — parallelism goes through the pool executor |
//! | R14  | product library code AND binaries | no raw socket types (`TcpListener` / `TcpStream` / `UdpSocket`) outside `src/proto.rs` — all wire I/O goes through the framed `proto::Listener` / `proto::Conn` |
//! | R15  | library code of the product crates | no ad-hoc toposort/Kahn machinery (`toposort` / `topo_sort` / `topo_order` / `kahn` / `in_degree` identifiers) outside `crates/routing/src/plan.rs` — DAG scheduling goes through the certificate-checked `ReconfigPlan` |
//!
//! Existing violations are burned down, not bulk-suppressed: each one
//! needs an entry in `crates/xtask/lint.allow` (`rule|path|substring`),
//! and the test suite asserts the entry count never grows.
//!
//! The pipeline is a token lexer ([`lexer`]) feeding a brace-aware item
//! tree ([`itemtree`]: `#[cfg(test)]`/`#[cfg(feature = "obs")]` regions,
//! fn bodies, type declarations, impl blocks) and a cross-file symbol
//! table ([`symbols`]). It is still not rustc: no macro expansion, no
//! type inference — rules are written so the approximations over-report
//! on patterns we ban anyway rather than under-report on ones we allow.
//! Reports render as text, stable JSON (`--json`), or SARIF 2.1.0
//! (`--sarif PATH`), checked by the dependency-free [`json`] parser.
#![forbid(unsafe_code)]

pub mod allowlist;
pub mod itemtree;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scanner;
pub mod symbols;

use std::fmt;
use std::path::{Path, PathBuf};

pub use allowlist::Allowlist;
pub use rules::{FileClass, Rule};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path,
            self.line,
            self.rule.id(),
            self.excerpt
        )
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist (these fail the run).
    pub violations: Vec<Violation>,
    /// Violations suppressed by allowlist entries.
    pub allowed: Vec<Violation>,
    /// Allowlist entries that matched nothing (candidates for deletion).
    pub stale_allows: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean (no unallowed violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the report as a JSON object (std-only writer).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"excerpt\": \"{}\"}}",
                v.rule.id(),
                json_escape(&v.path),
                v.line,
                json_escape(&v.excerpt)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"allowed\": {},\n  \"stale_allows\": {},\n  \"files_scanned\": {}\n}}\n",
            self.allowed.len(),
            self.stale_allows.len(),
            self.files_scanned
        ));
        out
    }
}

impl netgraph::Validate for LintReport {
    /// Internal-consistency audit of a lint run: violations carry sane
    /// coordinates (known rule ids, non-empty relative paths, 1-based
    /// lines), nothing is double-reported as both failing and allowed,
    /// and a non-trivial workspace actually got scanned.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("xtask::LintReport");
        let malformed = self
            .violations
            .iter()
            .chain(&self.allowed)
            .filter(|v| {
                v.line == 0
                    || v.path.is_empty()
                    || Path::new(&v.path).is_absolute()
                    || crate::rules::Rule::from_id(v.rule.id()).is_none()
            })
            .count();
        rep.check("lint.violations-well-formed", malformed == 0, || {
            format!("{malformed} violations with bad rule/path/line")
        });
        let doubled = self
            .violations
            .iter()
            .filter(|v| {
                self.allowed
                    .iter()
                    .any(|a| a.rule == v.rule && a.path == v.path && a.line == v.line)
            })
            .count();
        rep.check("lint.no-double-report", doubled == 0, || {
            format!("{doubled} violations both failing and allowed")
        });
        rep.check("lint.scanned-something", self.files_scanned > 0, || {
            "a lint run that scanned zero files proves nothing".into()
        });
        rep
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every lintable `.rs` file under `root`, workspace-relative.
///
/// Skips `vendor/` (external API stand-ins with their own conventions),
/// `target/`, and hidden directories.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Run every lint rule over the workspace at `root`, applying the
/// allowlist at `crates/xtask/lint.allow` (when present).
///
/// # Errors
///
/// I/O failures while reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let allow_path = root.join("crates/xtask/lint.allow");
    let allowlist = if allow_path.exists() {
        Allowlist::parse(&std::fs::read_to_string(&allow_path)?)
    } else {
        Allowlist::default()
    };
    lint_workspace_with(root, &allowlist)
}

/// [`lint_workspace`] with an explicit allowlist (test hook).
///
/// Two phases: a per-file pass (R1-R11, R13-R15) that also folds every file's
/// item tree into the workspace symbol table, then the symbol-table
/// pass (R12: pub constructor-bearing product types without a
/// `Validate` impl). Violations are reported in (path, line, rule)
/// order so `--json` and SARIF output are stable across platforms and
/// directory-walk order.
///
/// # Errors
///
/// I/O failures while reading the tree.
pub fn lint_workspace_with(root: &Path, allowlist: &Allowlist) -> std::io::Result<LintReport> {
    let files = collect_rs_files(root)?;
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let mut matched_allows = vec![false; allowlist.len()];
    let mut table = symbols::SymbolTable::default();
    let mut route =
        |report: &mut LintReport, violation: Violation| match allowlist.matches(&violation) {
            Some(idx) => {
                matched_allows[idx] = true;
                report.allowed.push(violation);
            }
            None => report.violations.push(violation),
        };
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let analysis = rules::analyze_file(rel, &text);
        let lines: Vec<&str> = text.lines().collect();
        table.absorb(
            rel,
            &analysis.tree,
            &lines,
            rules::classify(rel) == FileClass::ProductLib,
        );
        for violation in analysis.violations {
            route(&mut report, violation);
        }
    }
    for site in table.unvalidated_ctor_types() {
        route(
            &mut report,
            Violation {
                rule: Rule::ValidateCoverage,
                path: site.path.clone(),
                line: site.line as usize,
                excerpt: site.excerpt.clone(),
            },
        );
    }
    for (idx, hit) in matched_allows.iter().enumerate() {
        if !hit {
            report.stale_allows.push(allowlist.entry_text(idx));
        }
    }
    let sort_key = |v: &Violation| {
        let rule_idx = Rule::ALL.iter().position(|r| *r == v.rule).unwrap_or(0);
        (v.path.clone(), v.line, rule_idx)
    };
    report.violations.sort_by_key(sort_key);
    report.allowed.sort_by_key(sort_key);
    netgraph::validate::debug_validate(&report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Validate;

    #[test]
    fn lint_report_audit_flags_corruption() {
        let mut report = LintReport {
            files_scanned: 3,
            ..LintReport::default()
        };
        assert!(report.audit().is_ok());
        let v = Violation {
            rule: rules::Rule::NoUnwrap,
            path: String::new(),
            line: 0,
            excerpt: "x.unwrap()".into(),
        };
        report.violations.push(v.clone());
        let rep = report.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "lint.violations-well-formed"),
            "{rep}"
        );
        report.violations[0].path = "src/lib.rs".into();
        report.violations[0].line = 4;
        report.allowed.push(report.violations[0].clone());
        let rep = report.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "lint.no-double-report"),
            "{rep}"
        );
    }

    #[test]
    fn finds_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above xtask");
        assert!(root.join("crates/xtask/Cargo.toml").exists());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn collect_skips_vendor_and_target() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above xtask");
        let files = collect_rs_files(&root).expect("walk workspace");
        assert!(files.iter().any(|f| f.starts_with("crates/netgraph/src/")));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.contains("target/")));
    }
}
