//! Hand-rolled SARIF 2.1.0 emission (no serde, like the obs layer's
//! JSON writers).
//!
//! One run, one tool (`xtask-lint`), one reporting descriptor per rule
//! (R1-R15), one `result` per unallowed violation with a physical
//! location (workspace-relative URI + 1-based start line). The output is
//! deterministic: results follow the report's (path, line, rule) order
//! and the rules array follows `Rule::ALL`.

use crate::rules::Rule;
use crate::{json_escape, LintReport};

/// Render `report` as a SARIF 2.1.0 log with a single run.
pub fn to_sarif(report: &LintReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"xtask-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/broker-net/xtask\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.id(),
            json_escape(rule.describe())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
            v.rule.id(),
            json_escape(&format!("{}: {}", v.rule.describe(), v.excerpt)),
            json_escape(&v.path),
            v.line
        ));
    }
    if !report.violations.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Validate that `text` is a well-formed SARIF 2.1.0 log: parses as
/// JSON, carries the right version, and every result has a ruleId,
/// a message, and a physical location with a positive start line.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn check_sarif(text: &str) -> Result<usize, String> {
    let doc = crate::json::parse(text)?;
    if doc.get("version").and_then(|v| v.as_str()) != Some("2.1.0") {
        return Err("version is not \"2.1.0\"".into());
    }
    let runs = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("missing runs array")?;
    if runs.len() != 1 {
        return Err(format!("expected exactly 1 run, found {}", runs.len()));
    }
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("missing tool.driver")?;
    if driver.get("name").and_then(|n| n.as_str()).is_none() {
        return Err("missing tool.driver.name".into());
    }
    let rule_ids: Vec<&str> = driver
        .get("rules")
        .and_then(|r| r.as_arr())
        .map(|rules| {
            rules
                .iter()
                .filter_map(|r| r.get("id").and_then(|i| i.as_str()))
                .collect()
        })
        .unwrap_or_default();
    let results = run
        .get("results")
        .and_then(|r| r.as_arr())
        .ok_or("missing results array")?;
    for (i, res) in results.iter().enumerate() {
        let rule_id = res
            .get("ruleId")
            .and_then(|r| r.as_str())
            .ok_or_else(|| format!("result {i}: missing ruleId"))?;
        if !rule_ids.contains(&rule_id) {
            return Err(format!(
                "result {i}: ruleId {rule_id} not declared by driver"
            ));
        }
        res.get("message")
            .and_then(|m| m.get("text"))
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("result {i}: missing message.text"))?;
        let loc = res
            .get("locations")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("physicalLocation"))
            .ok_or_else(|| format!("result {i}: missing physicalLocation"))?;
        loc.get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|u| u.as_str())
            .ok_or_else(|| format!("result {i}: missing artifactLocation.uri"))?;
        let line = loc
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(|l| l.as_num())
            .ok_or_else(|| format!("result {i}: missing region.startLine"))?;
        if line < 1.0 {
            return Err(format!("result {i}: startLine {line} < 1"));
        }
    }
    Ok(results.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn sample_report() -> LintReport {
        LintReport {
            violations: vec![
                Violation {
                    rule: Rule::NoUnwrap,
                    path: "crates/netgraph/src/x.rs".into(),
                    line: 7,
                    excerpt: "x.unwrap()".into(),
                },
                Violation {
                    rule: Rule::NoHashIteration,
                    path: "crates/routing/src/y.rs".into(),
                    line: 12,
                    excerpt: "for k in m.keys() { \"quoted\" }".into(),
                },
            ],
            files_scanned: 2,
            ..LintReport::default()
        }
    }

    #[test]
    fn emitted_sarif_is_well_formed() {
        let sarif = to_sarif(&sample_report());
        let n = check_sarif(&sarif).expect("well-formed");
        assert_eq!(n, 2, "one result per finding");
    }

    #[test]
    fn empty_report_is_well_formed_with_zero_results() {
        let sarif = to_sarif(&LintReport {
            files_scanned: 10,
            ..LintReport::default()
        });
        assert_eq!(check_sarif(&sarif), Ok(0));
    }

    #[test]
    fn results_carry_locations_and_declared_rule_ids() {
        let sarif = to_sarif(&sample_report());
        let doc = crate::json::parse(&sarif).expect("json");
        let results = doc
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(|r| r.as_arr())
            .expect("results");
        assert_eq!(
            results[0].get("ruleId").and_then(|r| r.as_str()),
            Some("R1")
        );
        assert_eq!(
            results[1]
                .get("locations")
                .and_then(|l| l.idx(0))
                .and_then(|l| l.get("physicalLocation"))
                .and_then(|p| p.get("region"))
                .and_then(|r| r.get("startLine"))
                .and_then(|s| s.as_num()),
            Some(12.0)
        );
    }

    #[test]
    fn check_rejects_corruption() {
        assert!(check_sarif("{").is_err());
        assert!(check_sarif("{\"version\": \"2.0.0\", \"runs\": []}").is_err());
        let sarif = to_sarif(&sample_report()).replace("\"ruleId\": \"R1\"", "\"ruleId\": \"R99\"");
        assert!(check_sarif(&sarif).is_err(), "undeclared ruleId");
    }
}
