//! Dependency-free Rust token lexer.
//!
//! Supersedes the blank-out [`crate::scanner`] as the substrate for the
//! lint rules: one pass produces a real token stream (identifiers,
//! lifetimes, numeric/string/char literals, punctuation with the common
//! multi-character operators fused) *and* the same per-line code/comment
//! channels the scanner emitted, so the two stay differentially testable
//! against each other (see the `lexer_scanner_agree` proptest).
//!
//! This is still deliberately not a full parser — no macro expansion, no
//! precedence — but tokens are enough to make rules like "`.unwrap ()`
//! with a stray space" or "`Ordering::Relaxed` spelled via a `use`
//! rename" visible where substring matching went blind.

use std::fmt;

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the name.
    Lifetime,
    /// Integer literal, including suffixed/prefixed forms (`7u64`, `0xFF`).
    Int,
    /// Float literal (`0.0`, `1e-3`, `2f64`).
    Float,
    /// String literal; `text` is the interior (escapes unprocessed).
    Str,
    /// Raw string literal; `text` is the interior.
    RawStr,
    /// Char literal; `text` is the interior.
    Char,
    /// Punctuation. Common multi-char operators (`::`, `->`, `=>`, `+=`,
    /// `==`, `..=`, ...) are fused into one token; `<<`/`>>` are *not*,
    /// so angle-bracket matching over generics stays possible.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (for literals: the interior, delimiters stripped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the exact identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the exact punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.text, self.line)
    }
}

/// Per-line code/comment channels, convention-compatible with
/// [`crate::scanner::ScannedLine`] (string interiors dropped, comments
/// blanked to a single space in `code` and captured in `comment`).
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// Source with comments and literal interiors blanked.
    pub code: String,
    /// Concatenated comment text on this line.
    pub comment: String,
}

/// Result of lexing a whole file.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// The token stream, in source order.
    pub toks: Vec<Tok>,
    /// Scanner-compatible per-line blanking channels.
    pub lines: Vec<LexedLine>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    BlockComment,
    Str,
    RawStr { hashes: usize },
}

/// Multi-character operators fused into single punctuation tokens,
/// longest first. `<<`/`>>` are deliberately absent (generics).
const MULTI_PUNCT: [&str; 16] = [
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "..",
];

/// Lex `text` into tokens plus scanner-compatible blanked lines.
#[allow(clippy::too_many_lines)]
pub fn lex(text: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let mut mode = Mode::Code;
    let mut block_depth = 0usize;
    // Literal text accumulated across lines for multi-line strings.
    let mut lit = String::new();
    let mut lit_line = 0u32;

    for (li, raw) in text.lines().enumerate() {
        let lineno = (li + 1) as u32;
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&chars[i..].iter().collect::<String>());
                        code.push(' ');
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment;
                        block_depth = 1;
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        mode = Mode::Str;
                        lit.clear();
                        lit_line = lineno;
                        i += 1;
                    }
                    'r' if matches!(next, Some('"' | '#')) && is_raw_string_start(&chars, i) => {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('r');
                            code.push('"');
                            mode = Mode::RawStr { hashes };
                            lit.clear();
                            lit_line = lineno;
                            i = j + 1;
                        } else {
                            // `r#ident` or a lone `r#`: treat `r` as the
                            // start of an ordinary identifier.
                            let (tok, len) = lex_ident(&chars, i);
                            code.push_str(&tok);
                            out.toks.push(Tok {
                                kind: TokKind::Ident,
                                text: tok,
                                line: lineno,
                            });
                            i += len;
                        }
                    }
                    '\'' => {
                        if let Some(len) = char_literal_len(&chars, i) {
                            let interior: String = chars[i + 1..i + len - 1].iter().collect();
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            out.toks.push(Tok {
                                kind: TokKind::Char,
                                text: interior,
                                line: lineno,
                            });
                            i += len;
                        } else {
                            // Lifetime: quote plus identifier characters.
                            code.push('\'');
                            let mut j = i + 1;
                            let mut name = String::from("'");
                            while j < chars.len() && is_ident_char(chars[j]) {
                                name.push(chars[j]);
                                code.push(chars[j]);
                                j += 1;
                            }
                            out.toks.push(Tok {
                                kind: TokKind::Lifetime,
                                text: name,
                                line: lineno,
                            });
                            i = j;
                        }
                    }
                    c if c.is_ascii_digit() => {
                        let (tok, len, is_float) = lex_number(&chars, i);
                        code.push_str(&tok);
                        out.toks.push(Tok {
                            kind: if is_float {
                                TokKind::Float
                            } else {
                                TokKind::Int
                            },
                            text: tok,
                            line: lineno,
                        });
                        i += len;
                    }
                    c if is_ident_start(c) => {
                        let (tok, len) = lex_ident(&chars, i);
                        code.push_str(&tok);
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: tok,
                            line: lineno,
                        });
                        i += len;
                    }
                    c if c.is_whitespace() => {
                        code.push(c);
                        i += 1;
                    }
                    _ => {
                        let rest: String = chars[i..].iter().take(3).collect();
                        let op = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op));
                        let (tok, len) = match op {
                            Some(op) => ((*op).to_string(), op.len()),
                            None => (c.to_string(), 1),
                        };
                        code.push_str(&tok);
                        out.toks.push(Tok {
                            kind: TokKind::Punct,
                            text: tok,
                            line: lineno,
                        });
                        i += len;
                    }
                },
                Mode::BlockComment => {
                    if c == '*' && next == Some('/') {
                        block_depth -= 1;
                        i += 2;
                        if block_depth == 0 {
                            mode = Mode::Code;
                        }
                    } else if c == '/' && next == Some('*') {
                        block_depth += 1;
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => {
                        lit.push(c);
                        if let Some(n) = next {
                            lit.push(n);
                        }
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: std::mem::take(&mut lit),
                            line: lit_line,
                        });
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => {
                        lit.push(c);
                        i += 1;
                    }
                },
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        out.toks.push(Tok {
                            kind: TokKind::RawStr,
                            text: std::mem::take(&mut lit),
                            line: lit_line,
                        });
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        lit.push(c);
                        i += 1;
                    }
                }
            }
        }
        if mode == Mode::Str || matches!(mode, Mode::RawStr { .. }) {
            lit.push('\n');
        }
        out.lines.push(LexedLine { code, comment });
    }
    // Unterminated literal at EOF: emit what accumulated so the token
    // stream never silently drops text.
    if !lit.is_empty() {
        let kind = if mode == Mode::Str {
            TokKind::Str
        } else {
            TokKind::RawStr
        };
        out.toks.push(Tok {
            kind,
            text: lit,
            line: lit_line,
        });
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_ident(chars: &[char], i: usize) -> (String, usize) {
    let mut j = i;
    let mut s = String::new();
    while j < chars.len() && is_ident_char(chars[j]) {
        s.push(chars[j]);
        j += 1;
    }
    (s, j - i)
}

/// Lex a numeric literal starting at a digit. Handles `_` separators,
/// radix prefixes, `1.5`, `1e-3`/`2.5E+7` exponents and type suffixes
/// (`7u64`, `2f64`). A trailing `.` followed by a non-digit (method call
/// `1.max(2)`, range `0..n`) is not consumed.
fn lex_number(chars: &[char], i: usize) -> (String, usize, bool) {
    let mut j = i;
    let mut s = String::new();
    let mut is_float = false;
    let radix_prefixed =
        chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    let push_word = |s: &mut String, j: &mut usize| {
        while *j < chars.len() && (chars[*j].is_ascii_alphanumeric() || chars[*j] == '_') {
            // An exponent sign only follows e/E in decimal literals.
            let c = chars[*j];
            s.push(c);
            *j += 1;
            if !radix_prefixed
                && (c == 'e' || c == 'E')
                && matches!(chars.get(*j), Some('+' | '-'))
                && chars.get(*j + 1).is_some_and(char::is_ascii_digit)
            {
                s.push(chars[*j]);
                *j += 1;
            }
        }
    };
    push_word(&mut s, &mut j);
    if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(char::is_ascii_digit) {
        is_float = true;
        s.push('.');
        j += 1;
        push_word(&mut s, &mut j);
    }
    if !radix_prefixed
        && (s.contains('e') || s.contains('E') || s.ends_with("f32") || s.ends_with("f64"))
    {
        is_float = true;
    }
    (s, j - i, is_float)
}

/// Whether `r` at `i` starts a raw string (vs. an identifier ending in r).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = chars[i - 1];
    !(prev.is_alphanumeric() || prev == '_')
}

/// Length of a char literal starting at `i` (which holds `'`), or `None`
/// if this is a lifetime. Mirrors the scanner's heuristic exactly.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            let mut j = i + 2;
            if matches!(chars.get(j), Some('x')) {
                j += 2;
            } else if matches!(chars.get(j), Some('u')) {
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                return Some(j - i + 1);
            }
            j += 1;
            (chars.get(j) == Some(&'\'')).then_some(j - i + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn multi_char_ops_fused_but_not_shifts() {
        let toks = kinds("a += b::c -> d..=e << f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["+=", "::", "->", "..=", "<", "<"]);
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("0 7u64 0xFF 1.5 1e-3 2f64 1.max(2) 0..n");
        let nums: Vec<(TokKind, &str)> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Int | TokKind::Float))
            .map(|(k, t)| (*k, t.as_str()))
            .collect();
        assert_eq!(
            nums,
            vec![
                (TokKind::Int, "0"),
                (TokKind::Int, "7u64"),
                (TokKind::Int, "0xFF"),
                (TokKind::Float, "1.5"),
                (TokKind::Float, "1e-3"),
                (TokKind::Float, "2f64"),
                (TokKind::Int, "1"),
                (TokKind::Int, "2"),
                (TokKind::Int, "0"),
            ]
        );
        // `1.max(2)` keeps `.max` as punct + ident, `0..n` keeps the range.
        assert!(toks.iter().any(|(_, t)| t == "max"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn strings_tokenized_and_blanked() {
        let f = lex("let s = \"has unwrap() inside\"; call();");
        assert!(f
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("unwrap")));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("call();"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = lex("let s = r#\"x.unwrap()\"#; let c = 'q'; let lt: &'static str = \"\";");
        assert!(f
            .toks
            .iter()
            .any(|t| t.kind == TokKind::RawStr && t.text.contains("unwrap")));
        assert!(f
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "q"));
        assert!(f
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(!f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn multiline_string_single_token() {
        let f = lex("let s = \"line one\nline two\"; done();");
        let strs: Vec<&Tok> = f.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].line, 1);
        assert!(strs[0].text.contains("line one\nline two"));
        assert!(f.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn comments_captured_per_line() {
        let f = lex("code(); // tail TODO\n/* block\nstill block */ after();");
        assert!(f.lines[0].comment.contains("TODO"));
        assert!(f.lines[1].comment.contains("block"));
        assert!(f.lines[2].code.contains("after();"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = lex("a\nb\nc");
        let lines: Vec<u32> = f.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
