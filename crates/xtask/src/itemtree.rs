//! Brace-aware item tree over the token stream.
//!
//! Walks the [`crate::lexer`] output once and recovers the shape the
//! rules need: which lines sit inside `#[cfg(test)]` / `#[cfg(feature =
//! "obs")]` regions (scanner-compatible semantics: the attribute line
//! through the matching close brace, inclusive), every `fn` with its
//! body token span, every `struct`/`enum` declaration with visibility
//! and lifetime-parameter flags, and every `impl` block with its trait
//! and self-type names. Still not a parser — no expressions, no
//! resolution — but enough structure for per-item rules (R10, R12) that
//! line-based scanning could never express.

use crate::lexer::{LexedFile, Tok, TokKind};

/// A `fn` item (free function, method, or nested fn — the list is flat).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index span `(open, close)` of the body braces, if any
    /// (trait-method declarations end in `;` and have no body).
    pub body: Option<(usize, usize)>,
}

/// A `struct` or `enum` declaration.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// Type name.
    pub name: String,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// Bare `pub` (restricted `pub(crate)` etc. does not count).
    pub is_pub: bool,
    /// Whether the generic parameter list contains a lifetime — borrowing
    /// views are validated through their owners, so R12 exempts them.
    pub has_lifetime: bool,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// `Some(trait)` for `impl Trait for Type`, `None` for inherent.
    pub trait_name: Option<String>,
    /// Last path segment of the self type (`Foo` in `impl Foo<'_>`).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token-index span `(open, close)` of the body braces.
    pub body: Option<(usize, usize)>,
    /// Whether the body declares a bare-`pub` `fn new`.
    pub has_pub_fn_new: bool,
}

/// A `mod` or `trait` item span (recorded for region bookkeeping).
#[derive(Debug, Clone)]
pub struct ScopeItem {
    /// Item name.
    pub name: String,
    /// 1-based line of the keyword.
    pub line: u32,
}

/// The item tree for one file.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Per-line (0-based index, 1-based line): inside `#[cfg(test)]`.
    pub in_cfg_test: Vec<bool>,
    /// Per-line: inside `#[cfg(feature = "obs")]`.
    pub in_cfg_obs: Vec<bool>,
    /// Every `fn`, flat, in source order.
    pub fns: Vec<FnItem>,
    /// Every `struct`/`enum` declaration.
    pub types: Vec<TypeDecl>,
    /// Every `impl` block.
    pub impls: Vec<ImplBlock>,
    /// `mod` and `trait` items (names + lines).
    pub scopes: Vec<ScopeItem>,
    /// For each token index holding `(`/`[`/`{`: the index of its match.
    pub close_of: Vec<Option<usize>>,
}

impl ItemTree {
    /// Whether 1-based `line` is inside a `#[cfg(test)]` region.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.in_cfg_test
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// Whether 1-based `line` is inside a `#[cfg(feature = "obs")]` region.
    pub fn line_in_obs(&self, line: u32) -> bool {
        self.in_cfg_obs
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }
}

/// Token texts that precede type-position `fn`/`impl` (`-> impl Trait`,
/// `f: fn(u32)`) rather than item-position keywords.
const TYPE_POSITION_PREV: [&str; 11] = [":", "(", "<", ",", "&", "->", "=", "|", "[", "+", ".."];

fn item_position(toks: &[Tok], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &toks[p]) {
        None => true,
        Some(prev) => {
            !(prev.kind == TokKind::Punct && TYPE_POSITION_PREV.contains(&prev.text.as_str()))
        }
    }
}

/// Build the item tree for one lexed file.
#[allow(clippy::too_many_lines)]
pub fn build(file: &LexedFile) -> ItemTree {
    let toks = &file.toks;
    let n_lines = file.lines.len();
    let mut tree = ItemTree {
        in_cfg_test: vec![false; n_lines],
        in_cfg_obs: vec![false; n_lines],
        close_of: vec![None; toks.len()],
        ..ItemTree::default()
    };

    // Delimiter matching: one stack per delimiter class.
    let mut stacks: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let class = match t.text.as_str() {
            "(" | ")" => 0,
            "[" | "]" => 1,
            "{" | "}" => 2,
            _ => continue,
        };
        if matches!(t.text.as_str(), "(" | "[" | "{") {
            stacks[class].push(i);
        } else if let Some(open) = stacks[class].pop() {
            tree.close_of[open] = Some(i);
        }
    }

    // cfg(test) / cfg(feature = "obs") regions. Scanner-compatible: the
    // attribute arms a pending flag; the next `{` (whatever item it
    // belongs to) opens the region, which spans the attribute line
    // through the line of the matching close brace. If no `{` follows,
    // the region runs to end of file.
    let mut pending_test: Option<u32> = None;
    let mut pending_obs: Option<u32> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") {
            // `#[...]` or inner `#![...]`.
            let mut j = i + 1;
            let inner = toks.get(j).is_some_and(|t| t.is_punct("!"));
            if inner {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                if let Some(close) = tree.close_of[j] {
                    let body = &toks[j + 1..close];
                    if attr_is_cfg_test(body) {
                        if inner {
                            tree.in_cfg_test.iter_mut().for_each(|b| *b = true);
                        } else {
                            pending_test = Some(t.line);
                        }
                    }
                    if attr_is_cfg_obs(body) {
                        if inner {
                            tree.in_cfg_obs.iter_mut().for_each(|b| *b = true);
                        } else {
                            pending_obs = Some(t.line);
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        if t.is_punct("{") && (pending_test.is_some() || pending_obs.is_some()) {
            let end_line = tree.close_of[i].map_or(u32::MAX, |c| toks[c].line);
            if let Some(from) = pending_test.take() {
                mark(&mut tree.in_cfg_test, from, end_line);
            }
            if let Some(from) = pending_obs.take() {
                mark(&mut tree.in_cfg_obs, from, end_line);
            }
        }
        i += 1;
    }
    if let Some(from) = pending_test {
        mark(&mut tree.in_cfg_test, from, u32::MAX);
    }
    if let Some(from) = pending_obs {
        mark(&mut tree.in_cfg_obs, from, u32::MAX);
    }

    // Items.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !item_position(toks, i) {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map_or_else(String::new, |n| n.text.clone());
                let body = find_body(toks, &tree.close_of, i + 1);
                tree.fns.push(FnItem {
                    name,
                    line: t.line,
                    body,
                });
            }
            "struct" | "enum" => {
                if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    tree.types.push(TypeDecl {
                        name: name_tok.text.clone(),
                        line: t.line,
                        is_pub: is_bare_pub(toks, &tree.close_of, i),
                        has_lifetime: generics_have_lifetime(toks, i + 2),
                    });
                }
            }
            "impl" => {
                let blk = parse_impl(toks, &tree.close_of, i);
                if let Some(blk) = blk {
                    tree.impls.push(blk);
                }
            }
            "mod" | "trait" => {
                if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    tree.scopes.push(ScopeItem {
                        name: name_tok.text.clone(),
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    tree
}

fn mark(lines: &mut [bool], from_line: u32, to_line: u32) {
    let a = (from_line as usize).saturating_sub(1);
    let b = (to_line as usize).min(lines.len());
    for b in lines.iter_mut().take(b).skip(a) {
        *b = true;
    }
}

fn attr_is_cfg_test(body: &[Tok]) -> bool {
    body.len() >= 4
        && body[0].is_ident("cfg")
        && body[1].is_punct("(")
        && body.iter().any(|t| t.is_ident("test"))
        && !body.iter().any(|t| t.is_ident("not"))
}

fn attr_is_cfg_obs(body: &[Tok]) -> bool {
    body.len() >= 4
        && body[0].is_ident("cfg")
        && body[1].is_punct("(")
        && body.iter().any(|t| t.is_ident("feature"))
        && body
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "obs")
        && !body.iter().any(|t| t.is_ident("not"))
}

/// From just past an item keyword, find the `{` opening its body (or
/// `None` if a `;` terminates first). Parens/brackets are skipped as
/// groups so default expressions and where-clause bounds don't confuse
/// the search.
fn find_body(toks: &[Tok], close_of: &[Option<usize>], mut i: usize) -> Option<(usize, usize)> {
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => {
                    i = close_of[i].map_or(toks.len(), |c| c + 1);
                    continue;
                }
                "{" => return close_of[i].map(|c| (i, c)),
                ";" => return None,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Whether the item keyword at `i` is preceded by a bare `pub`
/// (restricted `pub(crate)`/`pub(super)` does not count).
fn is_bare_pub(toks: &[Tok], _close_of: &[Option<usize>], i: usize) -> bool {
    i.checked_sub(1)
        .map(|p| toks[p].is_ident("pub"))
        .unwrap_or(false)
}

/// Whether the generic list starting at `i` (if it is `<`) binds a
/// lifetime parameter.
fn generics_have_lifetime(toks: &[Tok], i: usize) -> bool {
    if !toks.get(i).is_some_and(|t| t.is_punct("<")) {
        return false;
    }
    let mut depth = 0i32;
    for t in &toks[i..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Lifetime {
            return true;
        }
    }
    false
}

/// Parse `impl [<...>] [Trait for] Type [where ...] { ... }` starting at
/// the `impl` keyword.
fn parse_impl(toks: &[Tok], close_of: &[Option<usize>], kw: usize) -> Option<ImplBlock> {
    let mut i = kw + 1;
    // Skip generic parameters on the impl itself.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" if toks[i].kind == TokKind::Punct => depth += 1,
                ">" if toks[i].kind == TokKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Walk the header, remembering the last depth-0 path ident before
    // `for` / `where` / `{`.
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    let mut depth = 0i32;
    let mut body = None;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "{" if depth <= 0 => {
                    body = close_of[i].map(|c| (i, c));
                    break;
                }
                ";" => break,
                _ => {}
            },
            TokKind::Ident if depth <= 0 && !saw_where => match t.text.as_str() {
                "for" => saw_for = true,
                "where" => saw_where = true,
                "dyn" | "mut" | "const" => {}
                _ => {
                    if saw_for {
                        second = Some(t.text.clone());
                    } else {
                        first = Some(t.text.clone());
                    }
                }
            },
            _ => {}
        }
        i += 1;
    }
    let (trait_name, type_name) = if saw_for {
        (first, second?)
    } else {
        (None, first?)
    };
    let has_pub_fn_new = body.is_some_and(|(a, b)| body_has_pub_fn_new(toks, a, b));
    Some(ImplBlock {
        trait_name,
        type_name,
        line: toks[kw].line,
        body,
        has_pub_fn_new,
    })
}

fn body_has_pub_fn_new(toks: &[Tok], open: usize, close: usize) -> bool {
    for i in open..close.saturating_sub(1) {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("new")) {
            // Look back past `const`/`unsafe` for a bare `pub`.
            let mut j = i;
            while j > open {
                j -= 1;
                match toks[j].text.as_str() {
                    "const" | "unsafe" | "async" => continue,
                    "pub" => return toks[j].kind == TokKind::Ident,
                    _ => break,
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        build(&lex(src))
    }

    #[test]
    fn cfg_test_region_matches_scanner_semantics() {
        let src = "\
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() {}
";
        let tree = tree_of(src);
        let scanned = crate::scanner::scan(src);
        for (i, line) in scanned.iter().enumerate() {
            assert_eq!(
                tree.in_cfg_test[i],
                line.in_cfg_test,
                "line {} disagrees with scanner",
                i + 1
            );
        }
    }

    #[test]
    fn cfg_obs_region_tracked() {
        let src = "\
pub fn plain() {}
#[cfg(feature = \"obs\")]
pub fn gated() {
    body();
}
pub fn after() {}
";
        let tree = tree_of(src);
        assert!(!tree.line_in_obs(1));
        assert!(tree.line_in_obs(2));
        assert!(tree.line_in_obs(4));
        assert!(tree.line_in_obs(5));
        assert!(!tree.line_in_obs(6));
        // `not(feature = "obs")` is the *else* branch, not an obs region.
        let tree = tree_of("#[cfg(not(feature = \"obs\"))]\npub fn stub() {}\n");
        assert!(!tree.line_in_obs(1));
    }

    #[test]
    fn fns_with_bodies_and_without() {
        let src = "\
pub fn free(x: u32) -> u32 { x }
trait T {
    fn required(&self);
    fn provided(&self) { body(); }
}
";
        let tree = tree_of(src);
        let names: Vec<(&str, bool)> = tree
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.body.is_some()))
            .collect();
        assert_eq!(
            names,
            vec![("free", true), ("required", false), ("provided", true)]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let tree = tree_of("type F = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].name, "real");
    }

    #[test]
    fn type_decls_visibility_and_lifetimes() {
        let src = "\
pub struct Owned { x: u32 }
pub(crate) struct Internal;
struct Private;
pub struct View<'a> { inner: &'a u32 }
pub enum Kind { A, B }
";
        let tree = tree_of(src);
        let got: Vec<(&str, bool, bool)> = tree
            .types
            .iter()
            .map(|t| (t.name.as_str(), t.is_pub, t.has_lifetime))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Owned", true, false),
                ("Internal", false, false),
                ("Private", false, false),
                ("View", true, true),
                ("Kind", true, false),
            ]
        );
    }

    #[test]
    fn impl_inherent_vs_trait() {
        let src = "\
pub struct Foo;
impl Foo {
    pub fn new() -> Self { Foo }
}
impl Validate for Foo {
    fn audit(&self) -> AuditReport { AuditReport::new(\"Foo\") }
}
impl<'a> Display for Bar<'a> {
    fn fmt(&self) {}
}
";
        let tree = tree_of(src);
        let got: Vec<(Option<&str>, &str, bool)> = tree
            .impls
            .iter()
            .map(|b| {
                (
                    b.trait_name.as_deref(),
                    b.type_name.as_str(),
                    b.has_pub_fn_new,
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (None, "Foo", true),
                (Some("Validate"), "Foo", false),
                (Some("Display"), "Bar", false),
            ]
        );
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let tree = tree_of("pub fn iter() -> impl Iterator<Item = u32> { 0..3 }\n");
        assert!(tree.impls.is_empty());
        assert_eq!(tree.fns.len(), 1);
    }

    #[test]
    fn pub_crate_fn_new_is_not_a_public_constructor() {
        let src = "\
pub struct Foo;
impl Foo {
    pub(crate) fn new() -> Self { Foo }
}
";
        let tree = tree_of(src);
        assert!(!tree.impls[0].has_pub_fn_new);
    }

    #[test]
    fn nested_generics_do_not_break_matching() {
        let src = "pub struct Deep { m: Vec<Vec<(u32, u32)>> }\npub fn after() {}\n";
        let tree = tree_of(src);
        assert_eq!(tree.types.len(), 1);
        assert_eq!(tree.fns.len(), 1);
    }
}
