//! Minimal recursive-descent JSON parser.
//!
//! Exists so `xtask lint --sarif` output (and `--json`) can be checked
//! for well-formedness in CI without pulling a serde dependency into the
//! workspace. Accepts strict JSON (RFC 8259); no trailing commas, no
//! comments. Numbers are kept as `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use `BTreeMap` so iteration (and any
/// re-serialization in tests) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element access; `None` on non-arrays.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained array, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing garbage at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('n') => self.lit("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Json::Obj(m)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Json::Arr(v)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err("raw control character in string".into())
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\n\"y\""}"#)
            .expect("valid json");
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"\\u0041\\u00e9\"").expect("valid");
        assert_eq!(v.as_str(), Some("A\u{e9}"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[01abc]").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
