//! The R1-R8 rule set and per-file checking.

use crate::scanner;
use crate::Violation;
use std::fmt;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in product-crate library code.
    NoUnwrap,
    /// No non-seeded RNG outside `#[cfg(test)]`.
    NoUnseededRng,
    /// Crate roots must carry `#![forbid(unsafe_code)]` and a `//!` header.
    CrateRootHygiene,
    /// No `println!` / `print!` / `dbg!` in product-crate library code.
    NoPrintInLib,
    /// `TODO` / `FIXME` comments must reference an issue (`#123`).
    TodoNeedsIssue,
    /// No ad-hoc `VecDeque` BFS in product library code: traversal goes
    /// through `netgraph::traverse` (independent re-verification code is
    /// allowlisted).
    NoAdhocBfs,
    /// No hand-rolled frontier/word-manipulation loops (`count_ones`,
    /// `trailing_zeros`, `leading_zeros`) in product library code outside
    /// `netgraph/src/msbfs.rs` and `netgraph/src/nodeset.rs`: bit-level
    /// set machinery belongs to the kernel, consumers use its `LaneSet` /
    /// `Wavefront` / `NodeSet` APIs.
    NoAdhocWordOps,
    /// No `std::time::Instant` in product library code outside
    /// `netgraph/src/obs.rs`: ad-hoc timing belongs to the observability
    /// layer (`span!` records into the global registry, and compiles out
    /// when the `obs` feature is off).
    NoRawInstant,
}

impl Rule {
    /// Short stable identifier (`R1`..`R8`) used in reports and allowlists.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "R1",
            Rule::NoUnseededRng => "R2",
            Rule::CrateRootHygiene => "R3",
            Rule::NoPrintInLib => "R4",
            Rule::TodoNeedsIssue => "R5",
            Rule::NoAdhocBfs => "R6",
            Rule::NoAdhocWordOps => "R7",
            Rule::NoRawInstant => "R8",
        }
    }

    /// Parse an `R#` identifier.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "R1" => Some(Rule::NoUnwrap),
            "R2" => Some(Rule::NoUnseededRng),
            "R3" => Some(Rule::CrateRootHygiene),
            "R4" => Some(Rule::NoPrintInLib),
            "R5" => Some(Rule::TodoNeedsIssue),
            "R6" => Some(Rule::NoAdhocBfs),
            "R7" => Some(Rule::NoAdhocWordOps),
            "R8" => Some(Rule::NoRawInstant),
            _ => None,
        }
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no unwrap()/expect() in library code (use the crate error types)",
            Rule::NoUnseededRng => "no non-seeded RNG outside #[cfg(test)]",
            Rule::CrateRootHygiene => {
                "crate root must start with a //! header and forbid unsafe_code"
            }
            Rule::NoPrintInLib => "no println!/print!/dbg! in library code",
            Rule::TodoNeedsIssue => "TODO/FIXME must reference an issue (#N)",
            Rule::NoAdhocBfs => {
                "no ad-hoc VecDeque BFS in library code (use netgraph::traverse + GraphView)"
            }
            Rule::NoAdhocWordOps => {
                "no hand-rolled word-manipulation loops in library code (use netgraph::msbfs / NodeSet)"
            }
            Rule::NoRawInstant => {
                "no std::time::Instant in library code (use netgraph's span! observability macro)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The five crates whose library code carries the strict R1/R4 rules.
pub const PRODUCT_CRATES: [&str; 5] = ["netgraph", "topology", "brokerset", "routing", "economics"];

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a product crate (or the root `broker-net` facade):
    /// all rules apply.
    ProductLib,
    /// Library code of support crates (`xtask`): R2/R3/R5 only.
    SupportLib,
    /// Binaries (`src/bin/`, `src/main.rs`): user-facing I/O is the point.
    Bin,
    /// `tests/` trees and anything under `#[cfg(test)]`.
    Test,
    /// `benches/` trees: R1/R4 exempt, seeded RNG still required.
    Bench,
    /// `examples/` trees: narrative code, R2/R5 only.
    Example,
}

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.contains("/tests/") || path.starts_with("tests/") {
        return FileClass::Test;
    }
    if path.contains("/benches/") || path.starts_with("benches/") {
        return FileClass::Bench;
    }
    if path.contains("/examples/") || path.starts_with("examples/") {
        return FileClass::Example;
    }
    if path.contains("src/bin/") || path.ends_with("src/main.rs") {
        return FileClass::Bin;
    }
    let is_product = PRODUCT_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
        || path.starts_with("src/");
    if is_product {
        FileClass::ProductLib
    } else {
        FileClass::SupportLib
    }
}

/// Whether this path is a crate root that R3 applies to.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Run every applicable rule over one file.
pub fn check_file(path: &str, text: &str) -> Vec<Violation> {
    let class = classify(path);
    let lines = scanner::scan(text);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, rule: Rule, line: usize, excerpt: &str| {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line,
            excerpt: excerpt.trim().chars().take(120).collect(),
        });
    };

    for (idx, scanned) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let raw = text.lines().nth(idx).unwrap_or_default();
        let code = &scanned.code;

        // R1: unwrap/expect in product library code (outside tests).
        if class == FileClass::ProductLib
            && !scanned.in_cfg_test
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            push(&mut out, Rule::NoUnwrap, lineno, raw);
        }

        // R2: unseeded RNG anywhere outside test code.
        if class != FileClass::Test
            && !scanned.in_cfg_test
            && (code.contains("thread_rng") || code.contains("rand::random"))
        {
            push(&mut out, Rule::NoUnseededRng, lineno, raw);
        }

        // R4: stdout noise in product library code.
        if class == FileClass::ProductLib
            && !scanned.in_cfg_test
            && (code.contains("println!") || code.contains("print!(") || code.contains("dbg!("))
        {
            push(&mut out, Rule::NoPrintInLib, lineno, raw);
        }

        // R6: queue-based traversal in product library code must live in
        // the engine. Matching `VecDeque` is deliberately coarse — any
        // hand-rolled wavefront needs a queue, and the engine file is the
        // one place allowed to own it. Validators that must stay
        // structurally independent are allowlisted, not exempted here.
        if class == FileClass::ProductLib
            && !scanned.in_cfg_test
            && path != "crates/netgraph/src/traverse.rs"
            && code.contains("VecDeque")
        {
            push(&mut out, Rule::NoAdhocBfs, lineno, raw);
        }

        // R7: word-level bit manipulation in product library code belongs
        // to the two files that own the bitset machinery. Like R6, the
        // token match is deliberately coarse — popcount/ctz loops are the
        // signature of a hand-rolled frontier or lane sweep, and the
        // msbfs/nodeset APIs are the sanctioned way to get one.
        // Pre-existing coalition-mask arithmetic in economics is
        // allowlisted, not exempted here.
        if class == FileClass::ProductLib
            && !scanned.in_cfg_test
            && path != "crates/netgraph/src/msbfs.rs"
            && path != "crates/netgraph/src/nodeset.rs"
            && path != "crates/netgraph/src/obs.rs"
            && (code.contains(".count_ones(")
                || code.contains(".trailing_zeros(")
                || code.contains(".leading_zeros("))
        {
            push(&mut out, Rule::NoAdhocWordOps, lineno, raw);
        }

        // R8: wall-clock timing in product library code goes through the
        // observability layer, which owns the only sanctioned `Instant`.
        // Timers placed anywhere else either leak overhead into
        // non-instrumented builds or invent a second metrics channel.
        if class == FileClass::ProductLib
            && !scanned.in_cfg_test
            && path != "crates/netgraph/src/obs.rs"
            && code.contains("Instant")
        {
            push(&mut out, Rule::NoRawInstant, lineno, raw);
        }

        // R5: to-do/fixme markers need an issue reference on the line.
        let comment = &scanned.comment;
        if (comment.contains("TODO") || comment.contains("FIXME")) && !has_issue_ref(comment) {
            push(&mut out, Rule::TodoNeedsIssue, lineno, raw);
        }
    }

    // R3: crate-root hygiene (doc header + forbid(unsafe_code)).
    if is_crate_root(path) || path == "crates/xtask/src/lib.rs" {
        let first_meaningful = lines
            .iter()
            .map(|l| l.code.trim())
            .zip(text.lines())
            .find(|(code, _)| !code.is_empty() || !lines.is_empty());
        let starts_with_doc = text
            .lines()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.trim_start().starts_with("//!"));
        if !starts_with_doc {
            push(
                &mut out,
                Rule::CrateRootHygiene,
                1,
                "crate root missing leading //! doc header",
            );
        }
        if !text.contains("#![forbid(unsafe_code)]") {
            push(
                &mut out,
                Rule::CrateRootHygiene,
                1,
                "crate root missing #![forbid(unsafe_code)]",
            );
        }
        let _ = first_meaningful;
    }

    out
}

/// A TODO is acceptable when it cites an issue number like `#123`.
fn has_issue_ref(comment: &str) -> bool {
    let bytes = comment.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/netgraph/src/graph.rs"),
            FileClass::ProductLib
        );
        assert_eq!(classify("src/lib.rs"), FileClass::ProductLib);
        assert_eq!(classify("src/bin/broker_cli.rs"), FileClass::Bin);
        assert_eq!(classify("crates/netgraph/tests/csr.rs"), FileClass::Test);
        assert_eq!(classify("benches/coverage.rs"), FileClass::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("crates/xtask/src/rules.rs"), FileClass::SupportLib);
    }

    #[test]
    fn r1_fires_in_lib_not_in_tests() {
        let src = "\
//! doc
#![forbid(unsafe_code)]
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
        let v = check_file("crates/netgraph/src/lib.rs", src);
        let r1: Vec<_> = v.iter().filter(|v| v.rule == Rule::NoUnwrap).collect();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].line, 3);
    }

    #[test]
    fn r1_ignores_strings_comments_and_bins() {
        let src = "// call .unwrap() later\nlet s = \".unwrap()\";\n";
        assert!(check_file("crates/routing/src/x.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoUnwrap));
        let src = "fn main() { std::env::args().next().unwrap(); }";
        assert!(check_file("src/bin/cli.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoUnwrap));
    }

    #[test]
    fn r2_fires_outside_tests() {
        let src = "let mut rng = rand::thread_rng();";
        let v = check_file("crates/topology/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnseededRng));
        // Exempt inside #[cfg(test)].
        let src = "#[cfg(test)]\nmod t { fn f() { let r = rand::thread_rng(); } }";
        let v = check_file("crates/topology/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoUnseededRng));
        // Benches are NOT exempt: they must seed for reproducibility.
        let src = "let x = rand::random::<u64>();";
        let v = check_file("benches/b.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnseededRng));
    }

    #[test]
    fn r3_checks_crate_roots_only() {
        let bad = "pub fn f() {}\n";
        let v = check_file("crates/routing/src/lib.rs", bad);
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == Rule::CrateRootHygiene)
                .count(),
            2,
            "missing header AND missing forbid"
        );
        assert!(check_file("crates/routing/src/paths.rs", bad)
            .iter()
            .all(|v| v.rule != Rule::CrateRootHygiene));
        let good = "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(check_file("crates/routing/src/lib.rs", good)
            .iter()
            .all(|v| v.rule != Rule::CrateRootHygiene));
    }

    #[test]
    fn r4_fires_in_lib_only() {
        let src = "pub fn f() { println!(\"x\"); }";
        assert!(check_file("crates/economics/src/x.rs", src)
            .iter()
            .any(|v| v.rule == Rule::NoPrintInLib));
        assert!(check_file("src/bin/cli.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoPrintInLib));
    }

    #[test]
    fn r5_requires_issue_ref() {
        let v = check_file("crates/netgraph/src/x.rs", "// TODO: fix this\n");
        assert!(v.iter().any(|v| v.rule == Rule::TodoNeedsIssue));
        let v = check_file("crates/netgraph/src/x.rs", "// TODO(#42): fix this\n");
        assert!(v.iter().all(|v| v.rule != Rule::TodoNeedsIssue));
        // A marker inside a string is code, not a comment -> no violation.
        let v = check_file("crates/netgraph/src/x.rs", "let s = \"TODO later\";\n");
        assert!(v.iter().all(|v| v.rule != Rule::TodoNeedsIssue));
    }

    #[test]
    fn r6_flags_adhoc_bfs_outside_the_engine() {
        let src = "use std::collections::VecDeque;\nlet mut q = VecDeque::new();\n";
        // Product library code outside the engine: both lines fire —
        // including the fault/chaos layers, which must traverse through
        // the engine like everyone else.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
            "crates/routing/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::NoAdhocBfs).count(),
                2,
                "{path}"
            );
        }
        // The engine itself owns the queue.
        let v = check_file("crates/netgraph/src/traverse.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs));
        // Tests, benches and bins may hand-roll references freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { use std::collections::VecDeque; }\n";
        let v = check_file("crates/brokerset/src/coverage.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs));
    }

    #[test]
    fn r7_confines_word_ops_to_the_bitset_files() {
        let src = "let c = mask.count_ones();\nlet b = mask.trailing_zeros();\nlet l = mask.leading_zeros();\n";
        // Product library code outside the kernel: all three lines fire —
        // the fault/chaos layers get no special dispensation either.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::NoAdhocWordOps).count(),
                3,
                "{path}"
            );
        }
        // The kernel, the bitset and the histogram bucketing own the
        // word loops.
        for path in [
            "crates/netgraph/src/msbfs.rs",
            "crates/netgraph/src/nodeset.rs",
            "crates/netgraph/src/obs.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps), "{path}");
        }
        // Tests, benches and bins may bit-twiddle freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { fn f() { 3u32.count_ones(); } }\n";
        let v = check_file("crates/economics/src/shapley.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps));
    }

    #[test]
    fn r8_confines_instant_to_the_obs_layer() {
        let src = "let t0 = std::time::Instant::now();\n";
        // Product library code outside obs: fires. Chaos epochs are
        // logical time — wall clocks stay confined to the obs layer.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
            "crates/routing/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().any(|v| v.rule == Rule::NoRawInstant), "{path}");
        }
        // The observability layer owns the clock.
        let v = check_file("crates/netgraph/src/obs.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant));
        // Tests, benches, bins and support crates may time freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
            "crates/bench/src/lib.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { fn f() { std::time::Instant::now(); } }\n";
        let v = check_file("crates/routing/src/stitch.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant));
    }

    #[test]
    fn rule_ids_roundtrip() {
        for r in [
            Rule::NoUnwrap,
            Rule::NoUnseededRng,
            Rule::CrateRootHygiene,
            Rule::NoPrintInLib,
            Rule::TodoNeedsIssue,
            Rule::NoAdhocBfs,
            Rule::NoAdhocWordOps,
            Rule::NoRawInstant,
        ] {
            assert_eq!(Rule::from_id(r.id()), Some(r));
            assert!(!r.describe().is_empty());
        }
        assert_eq!(Rule::from_id("R9"), None);
    }
}
