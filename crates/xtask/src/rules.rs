//! The R1-R15 rule set and per-file checking.
//!
//! R1-R8 are token-level rewrites of the original line rules (strictly
//! fewer false negatives: `.unwrap ()` with interior whitespace, renamed
//! imports spelled out token-by-token). R9-R11 are semantic rules over
//! the item tree: no `HashMap`/`HashSet` iteration in product library
//! code, f64 reductions in threaded paths confined to the blessed
//! chunk-ordered reducers in `netgraph::par`, and `Ordering::Relaxed`
//! confined to the observability layer. R12 is a workspace rule (every
//! pub constructor-bearing product type needs a `Validate` impl) checked
//! by [`crate::symbols::SymbolTable`] after all files are absorbed.
//! R13 confines thread creation (`thread::spawn` / `thread::scope` /
//! `thread::Builder`) to the pool executor in `netgraph/src/par.rs`.
//! R14 confines raw socket types (`TcpListener` / `TcpStream` /
//! `UdpSocket`) to the framed wire protocol module in `src/proto.rs` —
//! and, unlike most rules, it also applies to binaries: the serving
//! path must not grow a second, unframed I/O dialect.
//! R15 confines topological-sort machinery (identifiers spelling out
//! toposort / Kahn / in-degree bookkeeping) to the dependency-DAG
//! planner in `crates/routing/src/plan.rs`: ad-hoc `Vec`-based
//! toposorts elsewhere fork the scheduling logic whose cut safety the
//! plan certificate audits.

use std::collections::BTreeSet;
use std::fmt;

use crate::itemtree::{self, ItemTree};
use crate::lexer::{self, Tok, TokKind};
use crate::Violation;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in product-crate library code.
    NoUnwrap,
    /// No non-seeded RNG outside `#[cfg(test)]`.
    NoUnseededRng,
    /// Crate roots must carry `#![forbid(unsafe_code)]` and a `//!` header.
    CrateRootHygiene,
    /// No `println!` / `print!` / `dbg!` in product-crate library code.
    NoPrintInLib,
    /// `TODO` / `FIXME` comments must reference an issue (`#123`).
    TodoNeedsIssue,
    /// No ad-hoc `VecDeque` BFS in product library code: traversal goes
    /// through `netgraph::traverse` (independent re-verification code is
    /// allowlisted).
    NoAdhocBfs,
    /// No hand-rolled frontier/word-manipulation loops (`count_ones`,
    /// `trailing_zeros`, `leading_zeros`) in product library code outside
    /// `netgraph/src/msbfs.rs` and `netgraph/src/nodeset.rs`: bit-level
    /// set machinery belongs to the kernel, consumers use its `LaneSet` /
    /// `Wavefront` / `NodeSet` APIs.
    NoAdhocWordOps,
    /// No `std::time::Instant` in product library code outside
    /// `netgraph/src/obs.rs`: ad-hoc timing belongs to the observability
    /// layer (`span!` records into the global registry, and compiles out
    /// when the `obs` feature is off).
    NoRawInstant,
    /// No iteration over `HashMap`/`HashSet` in product library code:
    /// hash iteration order is nondeterministic and must never reach a
    /// result, a trace, or an RNG consumption order. Use `BTreeMap` /
    /// `BTreeSet` (sorted iteration) or collect-and-sort.
    NoHashIteration,
    /// Float accumulation (`+=`, `.sum()`, `.fold(0.0, ..)`) in a
    /// function that touches the parallel machinery must go through the
    /// blessed chunk-ordered reducers (`par::map_reduce`, `par::sum_f64`)
    /// so merge order is fixed by chunk index, not scheduling.
    UnorderedFloatMerge,
    /// `Ordering::Relaxed` confined to `netgraph/src/obs.rs`: product
    /// code synchronizing on relaxed atomics is a determinism hazard;
    /// the observability counters are the one sanctioned use.
    NoRelaxedOrdering,
    /// Every `pub` constructor-bearing product type must have an
    /// `impl Validate` somewhere in the workspace, so the certificate
    /// chain (`debug_validate`) covers it.
    ValidateCoverage,
    /// No `thread::spawn` / `thread::scope` / `thread::Builder` in
    /// product library code outside `netgraph/src/par.rs`: ad-hoc
    /// threads bypass the persistent worker pool (losing its warm
    /// traversal arenas and determinism counters) and reintroduce
    /// scheduling-ordered merges the executor exists to prevent.
    NoAdhocThreads,
    /// No raw socket types (`TcpListener` / `TcpStream` / `UdpSocket`)
    /// outside `src/proto.rs` — in library code *or* binaries. The
    /// framed protocol module owns transport: length prefixes, frame
    /// caps and error replies live in one place, so a stray
    /// `TcpStream::connect` cannot bypass them.
    NoRawSockets,
    /// No ad-hoc topological-sort machinery in product library code
    /// outside `crates/routing/src/plan.rs`: identifiers spelling out
    /// toposort/Kahn/in-degree bookkeeping mark a second DAG scheduler
    /// next to the planner, whose every intermediate cut is
    /// certificate-checked. Forks of that logic get none of the
    /// safety audit.
    NoAdhocToposort,
}

impl Rule {
    /// Every rule, in id order (used by the SARIF rules array and
    /// `--explain` listings).
    pub const ALL: [Rule; 15] = [
        Rule::NoUnwrap,
        Rule::NoUnseededRng,
        Rule::CrateRootHygiene,
        Rule::NoPrintInLib,
        Rule::TodoNeedsIssue,
        Rule::NoAdhocBfs,
        Rule::NoAdhocWordOps,
        Rule::NoRawInstant,
        Rule::NoHashIteration,
        Rule::UnorderedFloatMerge,
        Rule::NoRelaxedOrdering,
        Rule::ValidateCoverage,
        Rule::NoAdhocThreads,
        Rule::NoRawSockets,
        Rule::NoAdhocToposort,
    ];

    /// Short stable identifier (`R1`..`R15`) used in reports and allowlists.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "R1",
            Rule::NoUnseededRng => "R2",
            Rule::CrateRootHygiene => "R3",
            Rule::NoPrintInLib => "R4",
            Rule::TodoNeedsIssue => "R5",
            Rule::NoAdhocBfs => "R6",
            Rule::NoAdhocWordOps => "R7",
            Rule::NoRawInstant => "R8",
            Rule::NoHashIteration => "R9",
            Rule::UnorderedFloatMerge => "R10",
            Rule::NoRelaxedOrdering => "R11",
            Rule::ValidateCoverage => "R12",
            Rule::NoAdhocThreads => "R13",
            Rule::NoRawSockets => "R14",
            Rule::NoAdhocToposort => "R15",
        }
    }

    /// Parse an `R#` identifier.
    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no unwrap()/expect() in library code (use the crate error types)",
            Rule::NoUnseededRng => "no non-seeded RNG outside #[cfg(test)]",
            Rule::CrateRootHygiene => {
                "crate root must start with a //! header and forbid unsafe_code"
            }
            Rule::NoPrintInLib => "no println!/print!/dbg! in library code",
            Rule::TodoNeedsIssue => "TODO/FIXME must reference an issue (#N)",
            Rule::NoAdhocBfs => {
                "no ad-hoc VecDeque BFS in library code (use netgraph::traverse + GraphView)"
            }
            Rule::NoAdhocWordOps => {
                "no hand-rolled word-manipulation loops in library code (use netgraph::msbfs / NodeSet)"
            }
            Rule::NoRawInstant => {
                "no std::time::Instant in library code (use netgraph's span! observability macro)"
            }
            Rule::NoHashIteration => {
                "no HashMap/HashSet iteration in library code (use BTreeMap/BTreeSet or sort first)"
            }
            Rule::UnorderedFloatMerge => {
                "float reductions in threaded paths must use par::map_reduce / par::sum_f64"
            }
            Rule::NoRelaxedOrdering => {
                "Ordering::Relaxed is confined to netgraph/src/obs.rs (use SeqCst elsewhere)"
            }
            Rule::ValidateCoverage => {
                "pub constructor-bearing product types need an impl Validate certificate"
            }
            Rule::NoAdhocThreads => {
                "no thread::spawn/scope/Builder outside netgraph/src/par.rs (use the pool executor)"
            }
            Rule::NoRawSockets => {
                "no TcpListener/TcpStream/UdpSocket outside src/proto.rs (use proto::Listener/Conn)"
            }
            Rule::NoAdhocToposort => {
                "no ad-hoc toposort/Kahn machinery outside routing/src/plan.rs (use ReconfigPlan)"
            }
        }
    }

    /// Long-form rationale for `xtask lint --explain RN`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoUnwrap => {
                "R1 NoUnwrap\n\
                 Library code in the product crates must not call .unwrap() or\n\
                 .expect(...). A panic in an evaluator aborts a whole sweep and\n\
                 loses the partial results; the crate error types exist so the\n\
                 caller decides. Deliberate constructor-contract panics are\n\
                 allowlisted individually in crates/xtask/lint.allow.\n\
                 Fix: return Result via the crate's error enum, or restructure\n\
                 so the impossible case is unrepresentable."
            }
            Rule::NoUnseededRng => {
                "R2 NoUnseededRng\n\
                 thread_rng()/rand::random seed from the OS, so two runs of the\n\
                 same experiment disagree and no figure is reproducible. All\n\
                 randomness flows from an explicit u64 seed (StdRng::seed_from_u64)\n\
                 recorded next to the result. Benches included: a bench that\n\
                 cannot be re-run on the same input measures nothing.\n\
                 Fix: thread a seed parameter in; tests may keep thread_rng\n\
                 inside #[cfg(test)]."
            }
            Rule::CrateRootHygiene => {
                "R3 CrateRootHygiene\n\
                 Every crate root starts with a //! doc header (what the crate\n\
                 is for) and #![forbid(unsafe_code)] (the whole workspace is\n\
                 safe Rust; determinism auditing assumes no data races by\n\
                 construction).\n\
                 Fix: add the header and the forbid attribute at the top of\n\
                 lib.rs."
            }
            Rule::NoPrintInLib => {
                "R4 NoPrintInLib\n\
                 println!/print!/dbg! in library code interleaves with real\n\
                 output nondeterministically under threads and poisons golden\n\
                 files. Output belongs to the bin/bench layer; diagnostics go\n\
                 through the obs feature's counters and spans.\n\
                 Fix: delete the print, or return the value so the caller can\n\
                 report it."
            }
            Rule::TodoNeedsIssue => {
                "R5 TodoNeedsIssue\n\
                 TODO/FIXME comments rot unless they cite a tracking issue.\n\
                 Fix: write TODO(#123): ... or resolve the debt on the spot."
            }
            Rule::NoAdhocBfs => {
                "R6 NoAdhocBfs\n\
                 Hand-rolled VecDeque traversals fork the reachability logic:\n\
                 when valley-free filtering or masking changes, the copies\n\
                 drift. netgraph::traverse + GraphView is the one BFS. The\n\
                 brokerset re-verification BFS is allowlisted because an\n\
                 auditor must stay structurally independent of the engine it\n\
                 audits.\n\
                 Fix: express the walk as a GraphView and call traverse/msbfs."
            }
            Rule::NoAdhocWordOps => {
                "R7 NoAdhocWordOps\n\
                 count_ones/trailing_zeros/leading_zeros loops are the\n\
                 signature of a hand-rolled bitset frontier. The 64-lane\n\
                 machinery in netgraph/src/{msbfs,nodeset}.rs owns word-level\n\
                 tricks; consumers use LaneSet/Wavefront/NodeSet so lane\n\
                 semantics stay in one place. Coalition-mask arithmetic in\n\
                 economics (popcount = |S|) is allowlisted as domain math.\n\
                 Fix: use NodeSet/msbfs APIs, or justify an allowlist entry."
            }
            Rule::NoRawInstant => {
                "R8 NoRawInstant\n\
                 std::time::Instant in product code either leaks timing\n\
                 overhead into non-instrumented builds or invents a second\n\
                 metrics channel beside the obs layer. netgraph/src/obs.rs\n\
                 owns the clock; span! compiles out when the obs feature is\n\
                 off.\n\
                 Fix: wrap the region in span!(\"name\") instead."
            }
            Rule::NoHashIteration => {
                "R9 NoHashIteration\n\
                 Iterating a HashMap/HashSet (.iter()/.keys()/.values()/\n\
                 .drain()/.retain()/for-in) visits entries in RandomState\n\
                 order: different per process, per build, per insertion\n\
                 history. Any such order that reaches a result, a trace, an\n\
                 RNG consumption sequence, or a tie-break silently breaks the\n\
                 bit-identical-across-threads guarantee the evaluators are\n\
                 tested for. Product library code iterates BTreeMap/BTreeSet\n\
                 (sorted, deterministic) or sorts collected keys explicitly.\n\
                 Membership-only hash use would be safe in principle, but the\n\
                 iteration forms above are banned outright — the fix pass in\n\
                 this repo converted every such container to BTree and dropped\n\
                 the compensating sort-after-collect calls.\n\
                 Fix: switch the container to BTreeMap/BTreeSet, or collect\n\
                 keys and sort before iterating."
            }
            Rule::UnorderedFloatMerge => {
                "R10 UnorderedFloatMerge\n\
                 f64 addition is not associative: merging per-chunk partials\n\
                 in scheduling order makes results differ across thread\n\
                 counts. Any function that touches the parallel machinery\n\
                 (par::map_chunks/par::map_auto/thread::spawn) must route float\n\
                 accumulation through the blessed reducers in netgraph::par —\n\
                 map_reduce folds partials in chunk-index order, sum_f64 is a\n\
                 fixed left fold — rather than += / .sum::<f64>() / .fold(0.0)\n\
                 over results whose order the scheduler picks. Accumulation\n\
                 *inside* the per-chunk closure is fine (chunk-local, ordered).\n\
                 Fix: replace the merge loop with par::map_reduce(items, ...)\n\
                 or par::sum_f64(&partials)."
            }
            Rule::NoRelaxedOrdering => {
                "R11 NoRelaxedOrdering\n\
                 Ordering::Relaxed gives no happens-before edges; product code\n\
                 synchronizing on relaxed atomics can observe torn protocol\n\
                 state, and auditing every such site is harder than banning\n\
                 them. The obs-layer counters (monotonic, merge-only metrics)\n\
                 are the one place relaxed semantics are provably safe, so\n\
                 netgraph/src/obs.rs is exempt.\n\
                 Fix: use Ordering::SeqCst — every non-obs atomic in this\n\
                 workspace is off the hot path by design."
            }
            Rule::ValidateCoverage => {
                "R12 ValidateCoverage\n\
                 The certificate chain (netgraph::Validate + debug_validate)\n\
                 only audits types that implement it. A new pub type with a\n\
                 pub constructor but no impl Validate silently opts out of\n\
                 every structural invariant check in debug/test builds. The\n\
                 symbol table cross-references every pub owned type in the\n\
                 product crates against impl Validate blocks anywhere in the\n\
                 workspace; borrowing views (lifetime-parameterized) are\n\
                 exempt because they are validated through their owners.\n\
                 Fix: implement Validate with real invariants (not an empty\n\
                 report) next to the type, and call debug_validate in its\n\
                 constructor or mutation points."
            }
            Rule::NoAdhocThreads => {
                "R13 NoAdhocThreads\n\
                 thread::spawn / thread::scope / thread::Builder in product\n\
                 library code creates workers the pool executor does not\n\
                 know about: they start cold (no warm TraversalArena or\n\
                 msbfs scratch from the thread-local pools), they skip the\n\
                 par.jobs/par.chunks accounting the determinism suite pins,\n\
                 and any merge of their results is ordered by the OS\n\
                 scheduler rather than by chunk index. netgraph/src/par.rs\n\
                 owns thread creation; everything else expresses\n\
                 parallelism as map_chunks/map_auto/map_reduce jobs.\n\
                 Fix: route the fan-out through netgraph::par, or justify\n\
                 an allowlist entry for genuinely pool-incompatible work."
            }
            Rule::NoRawSockets => {
                "R14 NoRawSockets\n\
                 TcpListener / TcpStream / UdpSocket outside src/proto.rs\n\
                 means a second I/O dialect next to the framed protocol:\n\
                 unframed reads have no length-prefix discipline, no\n\
                 MAX_FRAME cap, and no uniform error replies, so every\n\
                 malformed-input guarantee the proto fuzz tests pin stops\n\
                 covering that path. Unlike most rules this one also binds\n\
                 binaries — brokerd and the bench clients speak through\n\
                 proto::Listener / proto::Conn, which carry the framing.\n\
                 Fix: express the endpoint through src/proto.rs (extend the\n\
                 opcode set if the protocol is missing a verb)."
            }
            Rule::NoAdhocToposort => {
                "R15 NoAdhocToposort\n\
                 A dependency DAG scheduled by a hand-rolled Vec toposort is\n\
                 a reconfiguration plan without the safety net: the planner\n\
                 in crates/routing/src/plan.rs is the one place Kahn layering\n\
                 lives, because every cut of every order it emits is checked\n\
                 by the plan certificate (acyclicity, per-prefix invariant\n\
                 validation, step-set/config-diff equality) and its parallel\n\
                 execution is pinned bit-identical across thread counts. The\n\
                 rule matches identifiers that spell the machinery out —\n\
                 toposort / topo_sort / topological_sort / topo_order / kahn\n\
                 (as a substring) and in_degree / indegree (exact) — in\n\
                 product library code outside the planner file. Comments may\n\
                 say Kahn freely; the lexer never sees them.\n\
                 Fix: model the work as ReconfigPlan steps (or build the DAG\n\
                 and call its layers()/execute()), or justify an allowlist\n\
                 entry for a genuinely independent auditor."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The five crates whose library code carries the strict R1/R4 rules.
pub const PRODUCT_CRATES: [&str; 5] = ["netgraph", "topology", "brokerset", "routing", "economics"];

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a product crate (or the root `broker-net` facade):
    /// all rules apply.
    ProductLib,
    /// Library code of support crates (`xtask`): R2/R3/R5 only.
    SupportLib,
    /// Binaries (`src/bin/`, `src/main.rs`): user-facing I/O is the point.
    Bin,
    /// `tests/` trees and anything under `#[cfg(test)]`.
    Test,
    /// `benches/` trees: R1/R4 exempt, seeded RNG still required.
    Bench,
    /// `examples/` trees: narrative code, R2/R5 only.
    Example,
}

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.contains("/tests/") || path.starts_with("tests/") {
        return FileClass::Test;
    }
    if path.contains("/benches/") || path.starts_with("benches/") {
        return FileClass::Bench;
    }
    if path.contains("/examples/") || path.starts_with("examples/") {
        return FileClass::Example;
    }
    if path.contains("src/bin/") || path.ends_with("src/main.rs") {
        return FileClass::Bin;
    }
    let is_product = PRODUCT_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
        || path.starts_with("src/");
    if is_product {
        FileClass::ProductLib
    } else {
        FileClass::SupportLib
    }
}

/// Whether this path is a crate root that R3 applies to.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Per-file analysis output: the violations plus the item tree (the
/// workspace pass feeds the tree to the symbol table for R12).
pub struct FileAnalysis {
    /// Violations found in this file (R1-R11, R13-R15; R12 is workspace-level).
    pub violations: Vec<Violation>,
    /// The file's item tree.
    pub tree: ItemTree,
}

/// Run every per-file rule over one file (compatibility wrapper).
pub fn check_file(path: &str, text: &str) -> Vec<Violation> {
    analyze_file(path, text).violations
}

/// Run every per-file rule over one file, keeping the item tree.
#[allow(clippy::too_many_lines)]
pub fn analyze_file(path: &str, text: &str) -> FileAnalysis {
    let class = classify(path);
    let lexed = lexer::lex(text);
    let tree = itemtree::build(&lexed);
    let raw_lines: Vec<&str> = text.lines().collect();
    let toks = &lexed.toks;

    let mut out: Vec<Violation> = Vec::new();
    // One violation per (rule, line), matching the line-based scanner's
    // granularity (and keeping allowlist entries 1:1 with report lines).
    let mut seen: BTreeSet<(&'static str, u32)> = BTreeSet::new();
    macro_rules! push {
        ($rule:expr, $line:expr) => {{
            let line: u32 = $line;
            let excerpt: String = raw_lines
                .get(line as usize - 1)
                .copied()
                .unwrap_or_default()
                .trim()
                .chars()
                .take(120)
                .collect();
            push!($rule, line, excerpt);
        }};
        ($rule:expr, $line:expr, $excerpt:expr) => {{
            let rule: Rule = $rule;
            let line: u32 = $line;
            if seen.insert((rule.id(), line)) {
                out.push(Violation {
                    rule,
                    path: path.to_string(),
                    line: line as usize,
                    excerpt: $excerpt.to_string(),
                });
            }
        }};
    }

    let product = class == FileClass::ProductLib;

    // --- Token-scan rules (R1, R2, R4, R6-R8, R11, R13-R15). ---
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = tree.line_in_test(t.line);
        let prev_is = |s: &str| i.checked_sub(1).is_some_and(|p| toks[p].is_punct(s));
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(s));

        // R1: `.unwrap (` / `.expect (` — token-level, so interior
        // whitespace or line breaks between the dot and the call no
        // longer hide it from the lint.
        if product
            && !in_test
            && prev_is(".")
            && next_is("(")
            && (t.text == "unwrap" || t.text == "expect")
        {
            push!(Rule::NoUnwrap, t.line);
        }

        // R2: unseeded RNG anywhere outside test code.
        if class != FileClass::Test
            && !in_test
            && (t.text == "thread_rng"
                || (t.text == "random"
                    && prev_is("::")
                    && i.checked_sub(2).is_some_and(|p| toks[p].is_ident("rand"))))
        {
            push!(Rule::NoUnseededRng, t.line);
        }

        // R4: stdout noise in product library code.
        if product
            && !in_test
            && next_is("!")
            && matches!(
                t.text.as_str(),
                "println" | "print" | "dbg" | "eprintln" | "eprint"
            )
        {
            push!(Rule::NoPrintInLib, t.line);
        }

        // R6: queue-based traversal in product library code must live in
        // the engine. Matching `VecDeque` is deliberately coarse — any
        // hand-rolled wavefront needs a queue, and the engine file is the
        // one place allowed to own it. Validators that must stay
        // structurally independent are allowlisted, not exempted here.
        if product && !in_test && path != "crates/netgraph/src/traverse.rs" && t.text == "VecDeque"
        {
            push!(Rule::NoAdhocBfs, t.line);
        }

        // R7: word-level bit manipulation belongs to the bitset kernel.
        if product
            && !in_test
            && path != "crates/netgraph/src/msbfs.rs"
            && path != "crates/netgraph/src/nodeset.rs"
            && path != "crates/netgraph/src/obs.rs"
            && prev_is(".")
            && next_is("(")
            && matches!(
                t.text.as_str(),
                "count_ones" | "trailing_zeros" | "leading_zeros"
            )
        {
            push!(Rule::NoAdhocWordOps, t.line);
        }

        // R8: wall-clock timing goes through the observability layer.
        if product && !in_test && path != "crates/netgraph/src/obs.rs" && t.text == "Instant" {
            push!(Rule::NoRawInstant, t.line);
        }

        // R11: relaxed atomics are an obs-layer privilege.
        if product && !in_test && path != "crates/netgraph/src/obs.rs" && t.text == "Relaxed" {
            push!(Rule::NoRelaxedOrdering, t.line);
        }

        // R13: thread creation is a pool-executor privilege. Matches
        // `thread::spawn`, `thread::scope` and `thread::Builder` (incl.
        // the `std::thread::...` spelling — the `thread` segment is the
        // one before the final `::`).
        if product
            && !in_test
            && path != "crates/netgraph/src/par.rs"
            && prev_is("::")
            && i.checked_sub(2).is_some_and(|p| toks[p].is_ident("thread"))
            && matches!(t.text.as_str(), "spawn" | "scope" | "Builder")
        {
            push!(Rule::NoAdhocThreads, t.line);
        }

        // R14: raw socket types are a proto-module privilege — in
        // library code AND binaries (the serving path must not grow an
        // unframed side channel around proto::Listener / proto::Conn).
        if (product || class == FileClass::Bin)
            && !in_test
            && path != "src/proto.rs"
            && matches!(t.text.as_str(), "TcpListener" | "TcpStream" | "UdpSocket")
        {
            push!(Rule::NoRawSockets, t.line);
        }

        // R15: topological-sort machinery is a planner privilege. The
        // marker substrings catch `toposort`, `kahn_layers`,
        // `topo_order` and friends wherever they appear in an
        // identifier; the in-degree spellings match exactly so that
        // e.g. `min_degree` stays clean.
        if product && !in_test && path != "crates/routing/src/plan.rs" {
            let lower = t.text.to_ascii_lowercase();
            let spelled = [
                "toposort",
                "topo_sort",
                "topological_sort",
                "topo_order",
                "kahn",
            ]
            .iter()
            .any(|m| lower.contains(m))
                || lower == "in_degree"
                || lower == "indegree";
            if spelled {
                push!(Rule::NoAdhocToposort, t.line);
            }
        }
    }

    // --- R5: deferred-work markers need an issue reference (`#123`). ---
    for (idx, line) in lexed.lines.iter().enumerate() {
        let comment = &line.comment;
        if (comment.contains("TODO") || comment.contains("FIXME")) && !has_issue_ref(comment) {
            push!(Rule::TodoNeedsIssue, (idx + 1) as u32);
        }
    }

    // --- R3: crate-root hygiene (doc header + forbid(unsafe_code)). ---
    if is_crate_root(path) || path == "crates/xtask/src/lib.rs" {
        // Pushed directly (not via the dedupe macro): both findings sit
        // on line 1 and are distinct.
        let mut hygiene = |excerpt: &str| {
            out.push(Violation {
                rule: Rule::CrateRootHygiene,
                path: path.to_string(),
                line: 1,
                excerpt: excerpt.to_string(),
            });
        };
        let starts_with_doc = text
            .lines()
            .find(|l| !l.trim().is_empty())
            .is_some_and(|l| l.trim_start().starts_with("//!"));
        if !starts_with_doc {
            hygiene("crate root missing leading //! doc header");
        }
        if !text.contains("#![forbid(unsafe_code)]") {
            hygiene("crate root missing #![forbid(unsafe_code)]");
        }
    }

    // --- R9: HashMap/HashSet iteration in product library code. ---
    if product {
        let marked = hash_marked_names(toks, &tree);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || tree.line_in_test(t.line) {
                continue;
            }
            // `name.iter()` / `self.field.drain(..)` / ...
            if ITER_METHODS.contains(&t.text.as_str())
                && i.checked_sub(1).is_some_and(|p| toks[p].is_punct("."))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                if let Some(recv) = i.checked_sub(2).map(|p| &toks[p]) {
                    if recv.kind == TokKind::Ident
                        && (marked.contains(&recv.text) || HASH_TYPES.contains(&recv.text.as_str()))
                    {
                        push!(Rule::NoHashIteration, t.line);
                    }
                }
            }
            // `for pat in <expr over a hash container> {`
            if t.text == "for" && for_loop_iterates_hash(toks, i, &marked) {
                push!(Rule::NoHashIteration, t.line);
            }
        }
    }

    // --- R10: float reductions in threaded merge paths. ---
    if product && path != "crates/netgraph/src/par.rs" {
        check_float_merges(&tree, toks, |rule, line| push!(rule, line));
    }

    FileAnalysis {
        violations: out,
        tree,
    }
}

/// Iteration-establishing methods on hash containers.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Names bound (via let, annotation, field or param declaration) to a
/// `HashMap`/`HashSet` type anywhere in the file. Deliberately
/// flow-insensitive: a name that is ever hash-typed is treated as
/// hash-typed everywhere, which can only over-report.
fn hash_marked_names(toks: &[Tok], tree: &ItemTree) -> BTreeSet<String> {
    marked_names(toks, &HASH_TYPES, false, &|line| tree.line_in_test(line))
}

/// Shared marker for R9/R10: names whose declared type or initializer
/// *directly* mentions one of `targets` (or, when `match_float_literals`
/// is set, a float literal — R10). Direct evidence only: `let n =
/// map.len()` does not inherit `map`'s mark, so derived scalars never
/// over-report. Marks do flow through `for`-loop patterns (`for (c, p)
/// in acc.iter_mut().zip(..)` marks `c` when `acc` is marked), which is
/// where merge loops actually bind their accumulators. Tokens inside
/// `#[cfg(test)]` regions are ignored so test fixtures can't mark
/// product names.
fn marked_names(
    toks: &[Tok],
    targets: &[&str],
    match_float_literals: bool,
    in_test: &dyn Fn(u32) -> bool,
) -> BTreeSet<String> {
    let mut marked: BTreeSet<String> = BTreeSet::new();
    let direct = |t: &Tok, _: &BTreeSet<String>| {
        (t.kind == TokKind::Ident && targets.contains(&t.text.as_str()))
            || (match_float_literals && t.kind == TokKind::Float)
    };
    let direct_or_marked = |t: &Tok, marked: &BTreeSet<String>| {
        (t.kind == TokKind::Ident
            && (targets.contains(&t.text.as_str()) || marked.contains(&t.text)))
            || (match_float_literals && t.kind == TokKind::Float)
    };
    // Iterate to a fixpoint so `for (a, b) in marked_expr` propagation
    // chains; the repo's nesting depth makes 4 rounds plenty.
    for _ in 0..4 {
        let before = marked.len();
        for (i, t) in toks.iter().enumerate() {
            if in_test(t.line) {
                continue;
            }
            // `name : <type...>` — struct fields, fn params, annotated lets,
            // struct-literal fields (`failed_edges: HashSet::new()`).
            if t.kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
                && span_mentions(toks, i + 2, &direct, &marked)
            {
                marked.insert(t.text.clone());
            }
            // `let [mut] name = <expr...> ;` (un-annotated: the annotated
            // form is handled above and takes precedence by not matching
            // here — after `name` comes `:`, not `=`).
            if t.is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                    if toks.get(j + 1).is_some_and(|n| n.is_punct("="))
                        && span_mentions(toks, j + 2, &direct, &marked)
                    {
                        marked.insert(name.text.clone());
                    }
                }
            }
            // `for <pat> in <expr> {` — propagate from a marked expr to the
            // pattern bindings.
            if t.is_ident("for") {
                if let Some((pat_names, expr_marked)) =
                    for_loop_parts(toks, i, &direct_or_marked, &marked)
                {
                    if expr_marked {
                        for n in pat_names {
                            marked.insert(n);
                        }
                    }
                }
            }
        }
        if marked.len() == before {
            break;
        }
    }
    marked
}

/// Whether the token span starting at `start` (up to a shallow
/// terminator) mentions a target per `mentions`.
fn span_mentions(
    toks: &[Tok],
    start: usize,
    mentions: &dyn Fn(&Tok, &BTreeSet<String>) -> bool,
    marked: &BTreeSet<String>,
) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(start).take(64) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                "," | ";" | "=" | "{" | "}" | "|" if depth == 0 => return false,
                _ => {}
            }
        } else if mentions(t, marked) {
            return true;
        }
    }
    false
}

/// Decompose `for <pat> in <expr> {` at the `for` keyword: returns the
/// pattern binding names and whether the expr mentions a marked name.
fn for_loop_parts(
    toks: &[Tok],
    for_idx: usize,
    mentions: &dyn Fn(&Tok, &BTreeSet<String>) -> bool,
    marked: &BTreeSet<String>,
) -> Option<(Vec<String>, bool)> {
    // Find `in` at delimiter depth 0 within a short window.
    let mut depth = 0i32;
    let mut in_idx = None;
    for (off, t) in toks.iter().enumerate().skip(for_idx + 1).take(24) {
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "in" if t.kind == TokKind::Ident && depth == 0 => {
                in_idx = Some(off);
                break;
            }
            "{" | ";" if t.kind == TokKind::Punct && depth == 0 => return None,
            _ => {}
        }
    }
    let in_idx = in_idx?;
    let pat_names: Vec<String> = toks[for_idx + 1..in_idx]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
        .map(|t| t.text.clone())
        .collect();
    let mut expr_marked = false;
    let mut depth = 0i32;
    for t in toks.iter().skip(in_idx + 1).take(64) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
        } else if mentions(t, marked) {
            expr_marked = true;
        }
    }
    Some((pat_names, expr_marked))
}

/// R9 helper: does the `for` loop at `for_idx` iterate a hash container?
fn for_loop_iterates_hash(toks: &[Tok], for_idx: usize, marked: &BTreeSet<String>) -> bool {
    let mentions = |t: &Tok, marked: &BTreeSet<String>| {
        t.kind == TokKind::Ident
            && (HASH_TYPES.contains(&t.text.as_str()) || marked.contains(&t.text))
    };
    for_loop_parts(toks, for_idx, &mentions, marked).is_some_and(|(_, hit)| hit)
}

/// Calls whose argument spans are exempt from R10: chunk-local
/// accumulation inside the blessed reducers is deterministic.
const BLESSED_REDUCERS: [&str; 4] = ["map_chunks", "map_auto", "map_reduce", "sum_f64"];

/// R10: fire on float accumulation outside blessed-reducer argument
/// spans, in any fn whose body touches the parallel machinery.
fn check_float_merges(tree: &ItemTree, toks: &[Tok], mut push: impl FnMut(Rule, u32)) {
    // close -> open inversion for subscript base resolution.
    let mut open_of: Vec<Option<usize>> = vec![None; toks.len()];
    for (open, close) in tree.close_of.iter().enumerate() {
        if let Some(close) = close {
            open_of[*close] = Some(open);
        }
    }
    for f in &tree.fns {
        let Some((a, b)) = f.body else { continue };
        let body = &toks[a..=b];
        if !has_par_usage(body) {
            continue;
        }
        let floats = marked_names(body, &["f64", "f32"], true, &|line| tree.line_in_test(line));
        let blessed = blessed_spans(toks, &tree.close_of, a, b);
        let mut i = a;
        while i <= b {
            if let Some(&(_, end)) = blessed.iter().find(|(s, e)| *s <= i && i <= *e) {
                i = end + 1;
                continue;
            }
            let t = &toks[i];
            if tree.line_in_test(t.line) {
                i += 1;
                continue;
            }
            match t.kind {
                TokKind::Punct
                    if (t.text == "+=" || t.text == "-=")
                        && assign_base(toks, &open_of, i)
                            .is_some_and(|base| floats.contains(base)) =>
                {
                    push(Rule::UnorderedFloatMerge, t.line);
                }
                // `.sum::<f64>()`
                TokKind::Ident
                    if t.text == "sum"
                        && i.checked_sub(1).is_some_and(|p| toks[p].is_punct("."))
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct("<"))
                        && toks
                            .get(i + 3)
                            .is_some_and(|n| n.is_ident("f64") || n.is_ident("f32")) =>
                {
                    push(Rule::UnorderedFloatMerge, t.line);
                }
                // `.fold(0.0, ..)`
                TokKind::Ident
                    if t.text == "fold"
                        && i.checked_sub(1).is_some_and(|p| toks[p].is_punct("."))
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                        && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float) =>
                {
                    push(Rule::UnorderedFloatMerge, t.line);
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Whether a fn body references the parallel machinery.
fn has_par_usage(body: &[Tok]) -> bool {
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if BLESSED_REDUCERS.contains(&t.text.as_str()) {
            return true;
        }
        let follows = |a: &str, b: &str| {
            body.get(i + 1).is_some_and(|n| n.is_punct(a))
                && body.get(i + 2).is_some_and(|n| n.is_ident(b))
        };
        if t.text == "thread" && (follows("::", "spawn") || follows("::", "scope")) {
            return true;
        }
    }
    false
}

/// Argument spans of blessed reducer calls inside `[a, b]`, as absolute
/// token index ranges.
fn blessed_spans(
    toks: &[Tok],
    close_of: &[Option<usize>],
    a: usize,
    b: usize,
) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in a..=b {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_blessed = BLESSED_REDUCERS.contains(&t.text.as_str());
        if is_blessed && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(close) = close_of[i + 1] {
                spans.push((i + 1, close));
            }
        }
    }
    spans
}

/// Resolve the base name of an assignment target at the `+=`/`-=` token:
/// `x +=`, `*x +=`, `x[i] +=`, `self.x +=` all resolve to `x`.
fn assign_base<'t>(toks: &'t [Tok], open_of: &[Option<usize>], op: usize) -> Option<&'t str> {
    let mut j = op.checked_sub(1)?;
    if toks[j].is_punct("]") {
        j = open_of[j]?.checked_sub(1)?;
    }
    let t = &toks[j];
    (t.kind == TokKind::Ident).then_some(t.text.as_str())
}

/// A TODO is acceptable when it cites an issue number like `#123`.
fn has_issue_ref(comment: &str) -> bool {
    let bytes = comment.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/netgraph/src/graph.rs"),
            FileClass::ProductLib
        );
        assert_eq!(classify("src/lib.rs"), FileClass::ProductLib);
        assert_eq!(classify("src/bin/broker_cli.rs"), FileClass::Bin);
        assert_eq!(classify("crates/netgraph/tests/csr.rs"), FileClass::Test);
        assert_eq!(classify("benches/coverage.rs"), FileClass::Bench);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("crates/xtask/src/rules.rs"), FileClass::SupportLib);
    }

    #[test]
    fn r1_fires_in_lib_not_in_tests() {
        let src = "\
//! doc
#![forbid(unsafe_code)]
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
        let v = check_file("crates/netgraph/src/lib.rs", src);
        let r1: Vec<_> = v.iter().filter(|v| v.rule == Rule::NoUnwrap).collect();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].line, 3);
    }

    #[test]
    fn r1_sees_through_whitespace_tricks() {
        // The line scanner missed `.unwrap ()`; the token pass does not.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap () }";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnwrap));
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap\n        ()\n}";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnwrap));
    }

    #[test]
    fn r1_ignores_strings_comments_and_bins() {
        let src = "// call .unwrap() later\nlet s = \".unwrap()\";\n";
        assert!(check_file("crates/routing/src/x.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoUnwrap));
        let src = "fn main() { std::env::args().next().unwrap(); }";
        assert!(check_file("src/bin/cli.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoUnwrap));
    }

    #[test]
    fn r2_fires_outside_tests() {
        let src = "let mut rng = rand::thread_rng();";
        let v = check_file("crates/topology/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnseededRng));
        // Exempt inside #[cfg(test)].
        let src = "#[cfg(test)]\nmod t { fn f() { let r = rand::thread_rng(); } }";
        let v = check_file("crates/topology/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoUnseededRng));
        // Benches are NOT exempt: they must seed for reproducibility.
        let src = "let x = rand::random::<u64>();";
        let v = check_file("benches/b.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoUnseededRng));
    }

    #[test]
    fn r3_checks_crate_roots_only() {
        let bad = "pub fn f() {}\n";
        let v = check_file("crates/routing/src/lib.rs", bad);
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == Rule::CrateRootHygiene)
                .count(),
            2,
            "missing header AND missing forbid"
        );
        assert!(check_file("crates/routing/src/paths.rs", bad)
            .iter()
            .all(|v| v.rule != Rule::CrateRootHygiene));
        let good = "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(check_file("crates/routing/src/lib.rs", good)
            .iter()
            .all(|v| v.rule != Rule::CrateRootHygiene));
    }

    #[test]
    fn r4_fires_in_lib_only() {
        let src = "pub fn f() { println!(\"x\"); }";
        assert!(check_file("crates/economics/src/x.rs", src)
            .iter()
            .any(|v| v.rule == Rule::NoPrintInLib));
        assert!(check_file("src/bin/cli.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoPrintInLib));
    }

    #[test]
    fn r5_requires_issue_ref() {
        let v = check_file("crates/netgraph/src/x.rs", "// TODO: fix this\n");
        assert!(v.iter().any(|v| v.rule == Rule::TodoNeedsIssue));
        let v = check_file("crates/netgraph/src/x.rs", "// TODO(#42): fix this\n");
        assert!(v.iter().all(|v| v.rule != Rule::TodoNeedsIssue));
        // A marker inside a string is code, not a comment -> no violation.
        let v = check_file("crates/netgraph/src/x.rs", "let s = \"TODO later\";\n");
        assert!(v.iter().all(|v| v.rule != Rule::TodoNeedsIssue));
    }

    #[test]
    fn r6_flags_adhoc_bfs_outside_the_engine() {
        let src = "use std::collections::VecDeque;\nlet mut q = VecDeque::new();\n";
        // Product library code outside the engine: both lines fire —
        // including the fault/chaos layers, which must traverse through
        // the engine like everyone else.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
            "crates/routing/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::NoAdhocBfs).count(),
                2,
                "{path}"
            );
        }
        // The engine itself owns the queue.
        let v = check_file("crates/netgraph/src/traverse.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs));
        // Tests, benches and bins may hand-roll references freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { use std::collections::VecDeque; }\n";
        let v = check_file("crates/brokerset/src/coverage.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocBfs));
    }

    #[test]
    fn r7_confines_word_ops_to_the_bitset_files() {
        let src = "let c = mask.count_ones();\nlet b = mask.trailing_zeros();\nlet l = mask.leading_zeros();\n";
        // Product library code outside the kernel: all three lines fire —
        // the fault/chaos layers get no special dispensation either.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert_eq!(
                v.iter().filter(|v| v.rule == Rule::NoAdhocWordOps).count(),
                3,
                "{path}"
            );
        }
        // The kernel, the bitset and the histogram bucketing own the
        // word loops.
        for path in [
            "crates/netgraph/src/msbfs.rs",
            "crates/netgraph/src/nodeset.rs",
            "crates/netgraph/src/obs.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps), "{path}");
        }
        // Tests, benches and bins may bit-twiddle freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { fn f() { 3u32.count_ones(); } }\n";
        let v = check_file("crates/economics/src/shapley.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocWordOps));
    }

    #[test]
    fn r8_confines_instant_to_the_obs_layer() {
        let src = "let t0 = std::time::Instant::now();\n";
        // Product library code outside obs: fires. Chaos epochs are
        // logical time — wall clocks stay confined to the obs layer.
        for path in [
            "crates/brokerset/src/coverage.rs",
            "crates/netgraph/src/fault.rs",
            "crates/brokerset/src/chaos.rs",
            "crates/routing/src/chaos.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().any(|v| v.rule == Rule::NoRawInstant), "{path}");
        }
        // The observability layer owns the clock.
        let v = check_file("crates/netgraph/src/obs.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant));
        // Tests, benches, bins and support crates may time freely.
        for path in [
            "crates/netgraph/tests/engine_props.rs",
            "benches/b.rs",
            "src/bin/cli.rs",
            "crates/bench/src/lib.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { fn f() { std::time::Instant::now(); } }\n";
        let v = check_file("crates/routing/src/stitch.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRawInstant));
    }

    #[test]
    fn r9_flags_hash_iteration_forms() {
        // Direct method iteration over a field declared as HashMap.
        let src = "\
pub struct M { degraded: HashMap<(u32, u32), usize> }
impl M {
    fn sweep(&mut self) {
        self.degraded.retain(|_, v| *v > 0);
        for (k, v) in self.degraded.iter() { use_it(k, v); }
    }
}
";
        let v = check_file("crates/routing/src/x.rs", src);
        assert_eq!(
            v.iter().filter(|v| v.rule == Rule::NoHashIteration).count(),
            2,
            "{v:?}"
        );

        // `for x in &set` where set is a let-bound HashSet.
        let src = "\
fn f() {
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for x in &seen { g(x); }
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoHashIteration));

        // `.keys().collect()` on an inferred-let HashMap.
        let src = "\
fn f() {
    let m = std::collections::HashMap::new();
    let ks: Vec<u32> = m.keys().copied().collect();
}
";
        let v = check_file("crates/brokerset/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoHashIteration));
    }

    #[test]
    fn r9_exempts_membership_tests_btree_and_test_code() {
        // Membership-only use (insert/contains/get) does not fire.
        let src = "\
fn f() {
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    seen.insert(3);
    if seen.contains(&3) { g(); }
    let v = seen.len();
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoHashIteration), "{v:?}");

        // BTree iteration is the sanctioned pattern.
        let src = "\
fn f() {
    let mut m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for (k, v) in m.iter() { g(k, v); }
}
";
        let v = check_file("crates/routing/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoHashIteration));

        // Test code and non-product files may iterate hashes.
        let src = "\
#[cfg(test)]
mod t {
    fn f() {
        let m: HashMap<u32, u32> = HashMap::new();
        for k in m.keys() { g(k); }
    }
}
";
        let v = check_file("crates/routing/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoHashIteration));
        let src = "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { g(k); } }";
        let v = check_file("crates/xtask/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoHashIteration));
    }

    #[test]
    fn r10_flags_unblessed_float_merges() {
        // Merge loop after a map_chunks fan-out: the classic bug.
        let src = "\
pub fn betweenness(threads: usize) -> Vec<f64> {
    let mut acc = vec![0.0f64; 10];
    let partials = par::map_chunks(&seeds, 64, threads, |chunk| work(chunk));
    for part in partials {
        for (c, p) in acc.iter_mut().zip(part) {
            *c += p;
        }
    }
    acc
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == Rule::UnorderedFloatMerge),
            "{v:?}"
        );

        // `.sum::<f64>()` in a fn that uses par::map_auto.
        let src = "\
pub fn conn(threads: usize) -> f64 {
    let fractions: Vec<f64> = par::map_auto(&nodes, threads, |n| frac(n));
    fractions.iter().sum::<f64>() / fractions.len() as f64
}
";
        let v = check_file("crates/routing/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::UnorderedFloatMerge));
    }

    #[test]
    fn r10_exempts_blessed_reducers_and_serial_fns() {
        // The same merge expressed through map_reduce: clean.
        let src = "\
pub fn betweenness(threads: usize) -> Vec<f64> {
    par::map_reduce(&seeds, 64, threads, |chunk| work(chunk), vec![0.0f64; 10], |mut acc, part| {
        for (c, p) in acc.iter_mut().zip(part) { *c += p; }
        acc
    })
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(
            v.iter().all(|v| v.rule != Rule::UnorderedFloatMerge),
            "{v:?}"
        );

        // sum via the blessed helper: clean.
        let src = "\
pub fn conn(threads: usize) -> f64 {
    let fractions: Vec<f64> = par::map_auto(&nodes, threads, |n| frac(n));
    par::sum_f64(&fractions) / fractions.len() as f64
}
";
        let v = check_file("crates/routing/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::UnorderedFloatMerge));

        // A fully serial fn may accumulate floats freely.
        let src = "\
pub fn mean(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs { total += x; }
    total / xs.len() as f64
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::UnorderedFloatMerge));

        // Integer accumulation in a threaded fn is order-safe.
        let src = "\
pub fn count(threads: usize) -> u64 {
    let parts = par::map_auto(&nodes, threads, |n| hits(n));
    let mut total = 0u64;
    for p in parts { total += p; }
    total
}
";
        let v = check_file("crates/netgraph/src/x.rs", src);
        assert!(
            v.iter().all(|v| v.rule != Rule::UnorderedFloatMerge),
            "{v:?}"
        );
    }

    #[test]
    fn r11_confines_relaxed_to_obs() {
        let src = "let x = counter.fetch_add(1, Ordering::Relaxed);";
        let v = check_file("crates/netgraph/src/par.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::NoRelaxedOrdering));
        let v = check_file("crates/netgraph/src/obs.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRelaxedOrdering));
        let v = check_file("crates/xtask/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRelaxedOrdering));
        let src = "#[cfg(test)]\nmod t { fn f() { c.load(Ordering::Relaxed); } }";
        let v = check_file("crates/netgraph/src/par.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRelaxedOrdering));
        // SeqCst is always fine.
        let src = "let x = counter.fetch_add(1, Ordering::SeqCst);";
        let v = check_file("crates/netgraph/src/par.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoRelaxedOrdering));
    }

    #[test]
    fn r13_confines_thread_creation_to_par() {
        for src in [
            "pub fn f() { std::thread::spawn(|| ()); }",
            "pub fn f() { thread::scope(|s| { s.spawn(|| ()); }); }",
            "pub fn f() { let b = std::thread::Builder::new(); drop(b); }",
        ] {
            let v = check_file("crates/brokerset/src/x.rs", src);
            assert!(v.iter().any(|v| v.rule == Rule::NoAdhocThreads), "{src}");
            // The pool executor owns thread creation.
            let v = check_file("crates/netgraph/src/par.rs", src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocThreads), "{src}");
            // Bins and support crates are out of scope.
            let v = check_file("src/bin/cli.rs", src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocThreads), "{src}");
            let v = check_file("crates/xtask/src/x.rs", src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocThreads), "{src}");
        }
        // Test modules inside product files may spawn freely.
        let src = "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| ()); } }";
        let v = check_file("crates/brokerset/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocThreads));
        // Unrelated idents named spawn/scope without the thread path
        // segment do not fire.
        let src = "pub fn f() { pool.spawn(|| ()); tracing::scope(); }";
        let v = check_file("crates/brokerset/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocThreads));
    }

    #[test]
    fn r15_confines_toposort_machinery_to_the_planner() {
        // Spelled-out toposort machinery in product library code fires —
        // including substring hits inside longer identifiers.
        for src in [
            "pub fn order(dag: &Dag) -> Vec<usize> { toposort(dag) }",
            "pub fn order(dag: &Dag) -> Vec<usize> { kahn_layers(dag) }",
            "pub fn order(dag: &Dag) -> Vec<usize> { topo_sort(dag) }",
            "pub fn f() { let topo_order: Vec<usize> = Vec::new(); }",
            "pub fn f(g: &Dag) { let in_degree = vec![0u32; g.n()]; }",
            "pub fn f(g: &Dag) { let indegree = vec![0u32; g.n()]; }",
        ] {
            let v = check_file("crates/brokerset/src/x.rs", src);
            assert!(v.iter().any(|v| v.rule == Rule::NoAdhocToposort), "{src}");
            // The planner owns the machinery.
            let v = check_file("crates/routing/src/plan.rs", src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocToposort), "{src}");
        }
        // The in-degree spellings are exact: `min_degree`/`indeg` stay
        // clean (the topology validator's independent Kahn audit uses
        // `indeg`, and the IXP baseline filters on `min_degree`).
        for src in [
            "pub fn ixp(net: &Internet, min_degree: usize) -> usize { min_degree }",
            "pub fn f(g: &Dag) { let mut indeg = vec![0u32; g.n()]; drop(indeg); }",
        ] {
            let v = check_file("crates/brokerset/src/x.rs", src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocToposort), "{src}");
        }
        // Comments may say Kahn freely — the lexer never sees them.
        let src = "// Kahn's algorithm would be wrong here.\npub fn f() {}\n";
        let v = check_file("crates/topology/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocToposort));
        // Tests, bins and support crates are out of scope.
        let src = "fn main() { let order = toposort(&dag); }";
        for path in [
            "crates/routing/tests/plan_props.rs",
            "src/bin/cli.rs",
            "crates/xtask/src/x.rs",
        ] {
            let v = check_file(path, src);
            assert!(v.iter().all(|v| v.rule != Rule::NoAdhocToposort), "{path}");
        }
        // #[cfg(test)] modules inside product libs are exempt too.
        let src = "#[cfg(test)]\nmod t { fn f() { toposort(&dag); } }";
        let v = check_file("crates/routing/src/chaos.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::NoAdhocToposort));
    }

    #[test]
    fn rule_ids_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
            assert!(!r.describe().is_empty());
            assert!(r.explain().starts_with(r.id()));
        }
        assert_eq!(Rule::from_id("R99"), None);
        assert_eq!(Rule::from_id("R0"), None);
    }
}
