//! Parsing and matching of `lint.allow` suppression entries.
//!
//! Format: one entry per line, `rule|path|substring`, where `rule` is an
//! `R#` id, `path` is the exact workspace-relative file, and `substring`
//! must occur in the offending line. Blank lines and `#` comments are
//! ignored. Matching on content rather than line number keeps entries
//! stable across unrelated edits to the same file.

use crate::rules::Rule;
use crate::Violation;

/// A parsed suppression entry.
#[derive(Debug, Clone)]
struct Entry {
    rule: Rule,
    path: String,
    substring: String,
    raw: String,
}

/// The set of accepted pre-existing violations.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parse allowlist text. Malformed lines are ignored (they simply
    /// never match, so the violation they meant to cover still fails the
    /// run — strictness errs toward reporting).
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            let (rule, path, substring) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(s)) => (r, p, s),
                _ => continue,
            };
            let Some(rule) = Rule::from_id(rule.trim()) else {
                continue;
            };
            entries.push(Entry {
                rule,
                path: path.trim().to_string(),
                substring: s_trim(substring),
                raw: line.to_string(),
            });
        }
        Allowlist { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the first entry covering `v`, if any.
    pub fn matches(&self, v: &Violation) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.rule == v.rule && e.path == v.path && v.excerpt.contains(&e.substring))
    }

    /// The raw text of entry `idx` (for stale-entry reporting).
    pub fn entry_text(&self, idx: usize) -> String {
        self.entries
            .get(idx)
            .map(|e| e.raw.clone())
            .unwrap_or_default()
    }
}

fn s_trim(s: &str) -> String {
    s.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, path: &str, excerpt: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# header comment\n\nR1|crates/netgraph/src/io.rs|legacy.unwrap()\nR5|src/lib.rs|TODO: tidy\n",
        );
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(
            a.matches(&v(
                Rule::NoUnwrap,
                "crates/netgraph/src/io.rs",
                "let x = legacy.unwrap();"
            )),
            Some(0)
        );
        // Wrong rule, wrong path, or missing substring -> no match.
        assert_eq!(
            a.matches(&v(
                Rule::NoPrintInLib,
                "crates/netgraph/src/io.rs",
                "legacy.unwrap()"
            )),
            None
        );
        assert_eq!(
            a.matches(&v(
                Rule::NoUnwrap,
                "crates/netgraph/src/other.rs",
                "legacy.unwrap()"
            )),
            None
        );
        assert_eq!(
            a.matches(&v(
                Rule::NoUnwrap,
                "crates/netgraph/src/io.rs",
                "fresh.unwrap()"
            )),
            None
        );
        assert_eq!(a.entry_text(1), "R5|src/lib.rs|TODO: tidy");
    }

    #[test]
    fn malformed_lines_skipped() {
        let a = Allowlist::parse("R1 only-two|fields\nR99|x.rs|bad rule\njust text\n");
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
        assert_eq!(a.entry_text(5), "");
    }
}
