//! CLI entry point: `cargo run -p xtask -- lint [--json] [--sarif PATH]`.
#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use xtask::rules::Rule;
use xtask::{find_workspace_root, lint_workspace, sarif};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint [--json] [--sarif PATH] [--root <dir>]
        run the repo-specific static analysis (R1-R15);
        --json prints the stable JSON report, --sarif also writes a
        SARIF 2.1.0 log to PATH
  lint --explain RN
        print the rationale and fix guidance for one rule (R1..R15)
  sarif-check <path>
        verify that <path> is a well-formed SARIF 2.1.0 log
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if let Some(i) = args.iter().position(|a| a == "--explain") {
                return run_explain(args.get(i + 1).map(String::as_str));
            }
            let json = args.iter().any(|a| a == "--json");
            let sarif_path = args
                .iter()
                .position(|a| a == "--sarif")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from);
            let root = args
                .iter()
                .position(|a| a == "--root")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from);
            run_lint(json, sarif_path, root)
        }
        Some("sarif-check") => match args.get(1) {
            Some(path) => run_sarif_check(Path::new(path)),
            None => {
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_explain(rule: Option<&str>) -> ExitCode {
    match rule.and_then(Rule::from_id) {
        Some(rule) => {
            println!("{}", rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "xtask: --explain needs a rule id ({} .. {})",
                Rule::ALL[0].id(),
                Rule::ALL[Rule::ALL.len() - 1].id()
            );
            for r in Rule::ALL {
                eprintln!("  {:<4} {}", r.id(), r.describe());
            }
            ExitCode::from(2)
        }
    }
}

fn run_sarif_check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match sarif::check_sarif(&text) {
        Ok(n) => {
            println!("{}: well-formed SARIF 2.1.0, {n} result(s)", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask: {} is not valid SARIF: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn run_lint(
    json: bool,
    sarif_path: Option<std::path::PathBuf>,
    root: Option<std::path::PathBuf>,
) -> ExitCode {
    let root = match root {
        Some(r) => r,
        None => {
            let here = Path::new(env!("CARGO_MANIFEST_DIR"));
            match find_workspace_root(here) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "xtask: cannot locate workspace root above {}",
                        here.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: lint failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = sarif_path {
        if let Err(e) = std::fs::write(&path, sarif::to_sarif(&report)) {
            eprintln!("xtask: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
            println!("  {}", v.rule.describe());
        }
        println!(
            "xtask lint: {} file(s), {} violation(s), {} allowlisted, {} stale allow entr(ies)",
            report.files_scanned,
            report.violations.len(),
            report.allowed.len(),
            report.stale_allows.len()
        );
        for s in &report.stale_allows {
            println!("  stale allow: {s}");
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
