//! CLI entry point: `cargo run -p xtask -- lint [--json]`.
#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use xtask::{find_workspace_root, lint_workspace};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint [--json] [--root <dir>]   run the repo-specific static analysis (R1-R5)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args.iter().any(|a| a == "--json");
            let root = args
                .iter()
                .position(|a| a == "--root")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from);
            run_lint(json, root)
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(json: bool, root: Option<std::path::PathBuf>) -> ExitCode {
    let root = match root {
        Some(r) => r,
        None => {
            let here = Path::new(env!("CARGO_MANIFEST_DIR"));
            match find_workspace_root(here) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "xtask: cannot locate workspace root above {}",
                        here.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: lint failed: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
            println!("  {}", v.rule.describe());
        }
        println!(
            "xtask lint: {} file(s), {} violation(s), {} allowlisted, {} stale allow entr(ies)",
            report.files_scanned,
            report.violations.len(),
            report.allowed.len(),
            report.stale_allows.len()
        );
        for s in &report.stale_allows {
            println!("  stale allow: {s}");
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
