//! Cross-file symbol table for the workspace-level rules.
//!
//! Accumulated over every product-library file during the per-file pass,
//! then queried once all files are in: which `pub` owned types exist,
//! which have a public `fn new` constructor somewhere in an inherent
//! impl, and which have an `impl Validate for T` anywhere in the
//! workspace. Matching is by bare type name — the workspace has no
//! cross-crate name collisions among pub types, and a name-based join
//! can only under-report (a collision where one of the pair is covered),
//! never invent a violation for a covered type.

use std::collections::BTreeSet;

use crate::itemtree::ItemTree;

/// One `pub` owned (no lifetime params) type declaration site.
#[derive(Debug, Clone)]
pub struct TypeSite {
    /// Type name.
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// 1-based declaration line.
    pub line: u32,
    /// The declaring source line, trimmed.
    pub excerpt: String,
}

/// Workspace-wide symbol table, built incrementally.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// `pub` owned type declarations in product library code.
    pub pub_types: Vec<TypeSite>,
    /// Names with a bare-`pub` `fn new` in an inherent impl.
    pub ctor_names: BTreeSet<String>,
    /// Names with an `impl Validate for T` anywhere (any file class —
    /// a certificate is a certificate wherever it lives).
    pub validated: BTreeSet<String>,
}

impl SymbolTable {
    /// Fold one file's item tree into the table. `is_product` controls
    /// whether declarations and constructors in `path` create R12
    /// obligations (true for product library files only); `Validate`
    /// impls are recorded from any file class — a certificate is a
    /// certificate wherever it lives.
    pub fn absorb(&mut self, path: &str, tree: &ItemTree, lines: &[&str], is_product: bool) {
        if is_product {
            for t in &tree.types {
                if t.is_pub && !t.has_lifetime && !tree.line_in_test(t.line) {
                    self.pub_types.push(TypeSite {
                        name: t.name.clone(),
                        path: path.to_string(),
                        line: t.line,
                        excerpt: lines
                            .get(t.line as usize - 1)
                            .copied()
                            .unwrap_or_default()
                            .trim()
                            .chars()
                            .take(120)
                            .collect(),
                    });
                }
            }
        }
        for b in &tree.impls {
            if tree.line_in_test(b.line) {
                continue;
            }
            match b.trait_name.as_deref() {
                None if b.has_pub_fn_new && is_product => {
                    self.ctor_names.insert(b.type_name.clone());
                }
                Some("Validate") => {
                    self.validated.insert(b.type_name.clone());
                }
                _ => {}
            }
        }
    }

    /// All `pub` constructor-bearing types lacking a `Validate` impl,
    /// sorted by (path, line).
    pub fn unvalidated_ctor_types(&self) -> Vec<&TypeSite> {
        let mut out: Vec<&TypeSite> = self
            .pub_types
            .iter()
            .filter(|t| self.ctor_names.contains(&t.name) && !self.validated.contains(&t.name))
            .collect();
        out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemtree::build;
    use crate::lexer::lex;

    #[test]
    fn ctor_without_validate_is_reported() {
        let mut table = SymbolTable::default();
        let a = build(&lex(
            "pub struct Covered;\nimpl Covered { pub fn new() -> Self { Covered } }\n\
             pub struct Naked;\nimpl Naked { pub fn new() -> Self { Naked } }\n",
        ));
        table.absorb("crates/x/src/a.rs", &a, &[], true);
        let b = build(&lex(
            "impl Validate for Covered { fn audit(&self) -> AuditReport { todo() } }\n",
        ));
        table.absorb("crates/x/src/b.rs", &b, &[], true);
        let missing: Vec<&str> = table
            .unvalidated_ctor_types()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(missing, vec!["Naked"]);
    }

    #[test]
    fn exemptions_views_private_and_ctorless() {
        let mut table = SymbolTable::default();
        let tree = build(&lex("pub struct View<'a> { x: &'a u32 }\n\
             impl<'a> View<'a> { pub fn new(x: &'a u32) -> Self { View { x } } }\n\
             struct Private;\nimpl Private { pub fn new() -> Self { Private } }\n\
             pub struct NoCtor { pub x: u32 }\n"));
        table.absorb("crates/x/src/lib.rs", &tree, &[], true);
        assert!(table.unvalidated_ctor_types().is_empty());
    }

    #[test]
    fn cfg_test_types_ignored() {
        let mut table = SymbolTable::default();
        let tree = build(&lex(
            "#[cfg(test)]\nmod tests {\n    pub struct Fixture;\n    impl Fixture { pub fn new() -> Self { Fixture } }\n}\n",
        ));
        table.absorb("crates/x/src/lib.rs", &tree, &[], true);
        assert!(table.unvalidated_ctor_types().is_empty());
    }
}
