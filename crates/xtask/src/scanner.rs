//! Lightweight lexical pass over a Rust source file.
//!
//! Produces, per line, the code with string literals and comments blanked
//! (for code-side rules) plus the comment text (for comment-side rules),
//! and marks which lines sit inside `#[cfg(test)]` brace regions.
//!
//! This is deliberately not a full parser: it understands line/block
//! comments (including nesting), plain and raw strings, char literals vs
//! lifetimes, and brace depth — enough to make the R1-R5 rules precise on
//! this codebase without a rustc dependency.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// Source text with comments and string/char literal *contents*
    /// blanked out (structure preserved, so offsets still line up).
    pub code: String,
    /// Concatenated comment text on this line (line, block, and doc).
    pub comment: String,
    /// Whether the line is inside (or opens) a `#[cfg(test)]` region.
    pub in_cfg_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    BlockComment,
    Str,
    RawStr { hashes: usize },
}

/// Scan a whole file into per-line code/comment channels.
pub fn scan(text: &str) -> Vec<ScannedLine> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    let mut block_depth = 0usize;

    // #[cfg(test)] region tracking: after the attribute is seen, the next
    // `{` opens an exempt region that ends when its brace closes.
    let mut brace_depth = 0i64;
    let mut pending_cfg_test = false;
    let mut cfg_test_until: Option<i64> = None;

    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // Latched per line: a region that both opens and closes on this
        // line (e.g. `mod t { ... }` after the attribute) still counts.
        let mut line_in_test = cfg_test_until.is_some();

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        // Line comment (incl. /// and //!) to end of line.
                        comment.push_str(&chars[i..].iter().collect::<String>());
                        code.push(' ');
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment;
                        block_depth = 1;
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' if matches!(next, Some('"' | '#')) && is_raw_string_start(&chars, i) => {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('r');
                            code.push('"');
                            mode = Mode::RawStr { hashes };
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes with
                        // a quote after one (possibly escaped) char.
                        if let Some(len) = char_literal_len(&chars, i) {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    '{' => {
                        brace_depth += 1;
                        if pending_cfg_test {
                            pending_cfg_test = false;
                            cfg_test_until = Some(brace_depth - 1);
                            line_in_test = true;
                        }
                        code.push('{');
                        i += 1;
                    }
                    '}' => {
                        brace_depth -= 1;
                        if let Some(limit) = cfg_test_until {
                            if brace_depth <= limit {
                                cfg_test_until = None;
                            }
                        }
                        code.push('}');
                        i += 1;
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
                Mode::BlockComment => {
                    if c == '*' && next == Some('/') {
                        block_depth -= 1;
                        i += 2;
                        if block_depth == 0 {
                            mode = Mode::Code;
                        }
                    } else if c == '/' && next == Some('*') {
                        block_depth += 1;
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
            }
        }

        // Unterminated string at EOL: plain strings don't span lines in
        // valid code unless escaped; treat conservatively as continuing.

        if mode == Mode::Code && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let in_test = line_in_test || cfg_test_until.is_some() || pending_cfg_test;
        lines.push(ScannedLine {
            code,
            comment,
            in_cfg_test: in_test,
        });
    }
    lines
}

/// Whether `r` at `i` starts a raw string (vs. an identifier ending in r).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = chars[i - 1];
    !(prev.is_alphanumeric() || prev == '_')
}

/// Length of a char literal starting at `i` (which holds `'`), or `None`
/// if this is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: find the closing quote.
            let mut j = i + 2;
            if matches!(chars.get(j), Some('x')) {
                j += 2;
            } else if matches!(chars.get(j), Some('u')) {
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                return Some(j - i + 1);
            }
            j += 1;
            (chars.get(j) == Some(&'\'')).then_some(j - i + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let lines = scan("let x = \"unwrap()\"; // call unwrap() here\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap() here"));
    }

    #[test]
    fn block_comments_nest() {
        let lines = scan("a /* x /* y */ z */ b\ncode");
        assert!(lines[0].code.contains('a'));
        assert!(!lines[0].code.contains('b') || lines[0].code.ends_with("b"));
        assert!(lines[1].code.contains("code"));
    }

    #[test]
    fn multiline_block_comment() {
        let lines = scan("before /* comment\nstill comment unwrap()\n*/ after");
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].comment.contains("unwrap"));
        assert!(lines[2].code.contains("after"));
    }

    #[test]
    fn raw_strings_blanked() {
        let lines = scan("let s = r#\"has unwrap() inside\"#; call();");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("call();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("str"));
        // A real char literal gets blanked.
        let lines = scan("let c = 'x'; let s = \"y\"; done();");
        assert!(lines[0].code.contains("done();"));
        assert!(!lines[0].code.contains('x'));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = "\
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() {}
";
        let lines = scan(src);
        assert!(!lines[0].in_cfg_test);
        assert!(lines[1].in_cfg_test, "attribute line starts the region");
        assert!(lines[2].in_cfg_test);
        assert!(lines[3].in_cfg_test);
        assert!(lines[4].in_cfg_test, "closing brace still in region");
        assert!(!lines[5].in_cfg_test);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let lines = scan(r#"let s = "a\"unwrap()\"b"; next();"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("next();"));
    }
}
