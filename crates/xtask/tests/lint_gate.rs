//! The lint gate itself, run as part of the ordinary test suite:
//!
//! 1. the shipped tree is clean under R1-R8,
//! 2. the allowlist only shrinks (burn down, never re-grow),
//! 3. a seeded violation makes `xtask lint` exit nonzero.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{find_workspace_root, lint_workspace, Allowlist};

/// The current number of accepted pre-existing violations. When you fix
/// one, decrement this; adding entries is a review-visible change here.
/// (History: started at 8 R1 entries; the parallel.rs join().expect was
/// fixed, and R6 added two entries for the deliberately engine-independent
/// re-verification BFS in brokerset/src/validate.rs. R7 added two entries
/// for the economics coalition-mask arithmetic, where popcount/ctz is the
/// domain operation rather than a hand-rolled frontier. The fault layer
/// — netgraph/src/fault.rs, brokerset/src/chaos.rs, routing/src/chaos.rs
/// — shipped with zero entries: it traverses through the engine and
/// keeps epochs as logical time, so R6-R8 hold without exceptions.
/// R15 shipped with zero entries: the one pre-existing toposort outside
/// the planner (the topology validator's customer→provider acyclicity
/// audit) spells its bookkeeping `indeg`, which the rule's exact
/// in-degree matcher deliberately leaves alone — an auditor must stay
/// structurally independent of the planner it could otherwise reuse.
/// The token-level auditor burned down the two constructor
/// `validate().expect(...)` entries in revenue.rs and internet.rs —
/// both are explicit `if let Err { panic! }` blocks now — taking the
/// ceiling from 11 to 9. R9-R12 shipped with zero entries. The query
/// plane added one R6 entry for the `exact_query` differential-test
/// oracle in brokerset/src/index.rs — like the validate.rs BFS, it must
/// stay structurally independent of the engine it checks — taking the
/// ceiling to 10. R13-R14 shipped with zero entries.)
const ALLOWLIST_CEILING: usize = 10;

fn repo_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root above xtask")
}

#[test]
fn shipped_tree_is_clean() {
    let report = lint_workspace(&repo_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "lint violations in the shipped tree:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries (the violation they covered is gone — delete them):\n{}",
        report.stale_allows.join("\n")
    );
    assert!(report.files_scanned > 50, "scanned a real tree");
}

#[test]
fn allowlist_never_grows() {
    let text = std::fs::read_to_string(repo_root().join("crates/xtask/lint.allow"))
        .expect("lint.allow present");
    let allow = Allowlist::parse(&text);
    assert!(
        allow.len() <= ALLOWLIST_CEILING,
        "allowlist grew to {} entries (ceiling {}): fix new violations instead of suppressing them",
        allow.len(),
        ALLOWLIST_CEILING
    );
}

/// Build a miniature workspace containing one seeded violation per rule
/// and check the binary reports them and exits nonzero.
#[test]
fn seeded_violations_fail_the_binary() {
    let dir = std::env::temp_dir().join(format!("xtask-lint-seeded-{}", std::process::id()));
    let src = dir.join("crates/netgraph/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    // lib.rs violates R3 (no doc header, no forbid) and R1/R2/R4-R8.
    std::fs::write(
        src.join("lib.rs"),
        "use std::collections::VecDeque;\npub fn f(x: Option<u32>) -> u32 {\n    // TODO make this lazy\n    let _q: VecDeque<u32> = VecDeque::new();\n    let _pop = 7u64.count_ones();\n    let _t0 = std::time::Instant::now();\n    println!(\"{:?}\", rand::thread_rng());\n    x.unwrap()\n}\n",
    )
    .expect("seeded source");

    // det.rs violates the determinism rules: R9 (hash iteration), R10
    // (float sum in a thread-spawning fn), R11 (Relaxed outside obs.rs),
    // R12 (pub constructor-bearing type without a Validate impl), R13
    // (the same std::thread::spawn, outside netgraph/src/par.rs), R14
    // (a raw TcpStream outside src/proto.rs) and R15 (an ad-hoc
    // toposort outside crates/routing/src/plan.rs).
    std::fs::write(
        src.join("det.rs"),
        "use std::collections::HashMap;\n\
         use std::sync::atomic::Ordering;\n\
         \n\
         pub struct Widget {\n\
             n: u32,\n\
         }\n\
         \n\
         impl Widget {\n\
             pub fn new(n: u32) -> Self {\n\
                 Widget { n }\n\
             }\n\
         }\n\
         \n\
         pub fn iterate(m: &HashMap<u32, u32>) -> u32 {\n\
             let mut s = 0;\n\
             for (k, v) in m.iter() {\n\
                 s += k + v;\n\
             }\n\
             s\n\
         }\n\
         \n\
         pub fn merge(xs: &[f64]) -> f64 {\n\
             let h = std::thread::spawn(|| ());\n\
             drop(h);\n\
             xs.iter().sum::<f64>()\n\
         }\n\
         \n\
         pub fn relaxed() -> Ordering {\n\
             Ordering::Relaxed\n\
         }\n\
         \n\
         pub fn dial() -> std::io::Result<std::net::TcpStream> {\n\
             std::net::TcpStream::connect(\"127.0.0.1:1\")\n\
         }\n\
         \n\
         pub fn schedule(dag: &[Vec<usize>]) -> Vec<usize> {\n\
             let mut in_degree = vec![0usize; dag.len()];\n\
             drop(&mut in_degree);\n\
             toposort(dag)\n\
         }\n",
    )
    .expect("seeded determinism source");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "seeded tree must fail the lint, got:\n{stdout}"
    );
    for rule in [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12", "R13", "R14",
        "R15",
    ] {
        // Word-boundary match: `R1` must not be satisfied by `R10`.
        let hit = stdout.lines().any(|l| {
            l.split(|c: char| !c.is_ascii_alphanumeric())
                .any(|w| w == rule)
        });
        assert!(hit, "{rule} missing from:\n{stdout}");
    }

    // And the JSON mode agrees.
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    assert!(!out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations\""), "json report:\n{json}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A clean miniature workspace exits zero.
#[test]
fn clean_tree_passes_the_binary() {
    let dir = std::env::temp_dir().join(format!("xtask-lint-clean-{}", std::process::id()));
    let src = dir.join("crates/netgraph/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "//! A tidy crate.\n#![forbid(unsafe_code)]\n\n/// Doubles.\npub fn f(x: u32) -> u32 {\n    x * 2\n}\n",
    )
    .expect("clean source");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    assert!(
        out.status.success(),
        "clean tree must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Golden test for the `--json` report: one known violation in an
/// otherwise clean mini workspace produces byte-for-byte stable output
/// (sorted, no timestamps, no absolute paths), run-to-run identical.
#[test]
fn json_report_shape_is_golden() {
    let dir = std::env::temp_dir().join(format!("xtask-lint-golden-{}", std::process::id()));
    let src = dir.join("crates/netgraph/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    // Clean except for exactly one R11 hit on line 6.
    std::fs::write(
        src.join("lib.rs"),
        "//! Seed.\n\
         #![forbid(unsafe_code)]\n\
         \n\
         /// Relaxed load outside the obs layer.\n\
         pub fn f(x: &std::sync::atomic::AtomicU32) -> u32 {\n\
         \x20   x.load(std::sync::atomic::Ordering::Relaxed)\n\
         }\n",
    )
    .expect("seeded source");

    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--json", "--root"])
            .arg(&dir)
            .output()
            .expect("run xtask binary");
        assert!(!out.status.success(), "the R11 seed must fail the lint");
        String::from_utf8(out.stdout).expect("utf-8 json")
    };
    let json = run();
    let expected = "{\n  \"violations\": [\n    {\"rule\": \"R11\", \
         \"file\": \"crates/netgraph/src/lib.rs\", \"line\": 6, \
         \"excerpt\": \"x.load(std::sync::atomic::Ordering::Relaxed)\"}\n  ],\n  \
         \"allowed\": 0,\n  \"stale_allows\": 0,\n  \"files_scanned\": 1\n}\n";
    assert_eq!(json, expected, "golden JSON shape drifted");
    // Run-to-run stability: the report must be byte-identical.
    assert_eq!(json, run(), "JSON report is not stable across runs");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--sarif` emits a log the repo's own `sarif-check` accepts, and the
/// log carries the violations with repo-relative locations.
#[test]
fn sarif_log_round_trips_through_sarif_check() {
    let dir = std::env::temp_dir().join(format!("xtask-lint-sarif-{}", std::process::id()));
    let src = dir.join("crates/netgraph/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "//! Seed.\n\
         #![forbid(unsafe_code)]\n\
         \n\
         /// Unwraps.\n\
         pub fn f(x: Option<u32>) -> u32 {\n\
         \x20   x.unwrap()\n\
         }\n",
    )
    .expect("seeded source");

    let log = dir.join("lint.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--json", "--sarif"])
        .arg(&log)
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    assert!(!out.status.success(), "the R1 seed must fail the lint");

    let text = std::fs::read_to_string(&log).expect("sarif log written");
    assert!(text.contains("\"2.1.0\""), "version missing:\n{text}");
    assert!(text.contains("\"R1\""), "rule id missing:\n{text}");
    assert!(
        text.contains("crates/netgraph/src/lib.rs"),
        "location missing:\n{text}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("sarif-check")
        .arg(&log)
        .output()
        .expect("run sarif-check");
    assert!(
        out.status.success(),
        "sarif-check rejected our own log:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}
