//! Differential property tests between the token lexer and the legacy
//! line scanner it superseded.
//!
//! The lexer emits the same per-line code/comment blanking channels the
//! scanner produced (same structure, literal interiors dropped, comments
//! routed to the comment channel). Generating adversarial compositions
//! of strings, raw strings, char literals, lifetimes and nested block
//! comments and asserting byte-for-byte agreement keeps the two
//! implementations honest against each other: a blanking bug would have
//! to be introduced *identically* in both to slip through.

use proptest::prelude::*;

use xtask::lexer::{lex, TokKind};
use xtask::scanner::scan;

/// Source fragments from the lexically tricky corners of Rust. Indexed
/// by the proptest-generated selector; `{N}` is replaced with a
/// generated filler word so string/comment interiors vary.
const FRAGMENTS: [&str; 22] = [
    // Plain code with rule-relevant identifiers.
    "let x = m.unwrap();",
    "use std::collections::HashMap;",
    "for (k, v) in m.iter() { s += k; }",
    "let y: f64 = 0.5e-3 + 2f64;",
    // Identifiers that almost start raw strings.
    "let r = rr; let rx = r#ident_like;",
    // Strings whose interiors contain marker text and escapes.
    "let s = \"{N} unwrap()\";",
    "let s = \"esc \\\" quote \\\\ done {N}\";",
    "let s = r#\"raw unwrap() \"quoted\" {N}\"#;",
    "let s = r\"raw no hash\";",
    // Char literals vs lifetimes.
    "let c = 'x'; let e = '\\n'; let u = '\\u{1F600}';",
    "fn f<'a>(x: &'a str) -> &'static str { x }",
    // Comments: line, doc, nested block.
    "code(); // tail {N} TODO",
    "/// doc comment with unwrap() {N}",
    "/* outer /* nested {N} */ still outer */ after();",
    "/* spans",
    "lines {N} */ tail();",
    // Multi-line string opener/closer halves.
    "let s = \"spans",
    "two lines {N}\"; done();",
    // cfg(test) region markers.
    "#[cfg(test)]",
    "mod tests { fn t() { y.unwrap(); } }",
    // Punctuation soup: fused operators and generics.
    "a += b::c -> d..=e << f >> g;",
    "let v: Vec<Vec<u64>> = Vec::new();",
];

/// Deterministic filler word derived from the generated salt, so literal
/// and comment interiors differ across cases without a string strategy.
fn filler(salt: u64) -> String {
    let words = ["", "x", "iter drain", "a(b)c", "retain.keys", "zzz"];
    words[(salt % words.len() as u64) as usize].to_string()
}

/// Compose a source file from fragment selectors.
fn compose(picks: &[(usize, u64)]) -> String {
    picks
        .iter()
        .map(|&(idx, salt)| FRAGMENTS[idx % FRAGMENTS.len()].replace("{N}", &filler(salt)))
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    /// The lexer's per-line code/comment channels agree byte-for-byte
    /// with the scanner's on arbitrary fragment compositions.
    #[test]
    fn lexer_scanner_agree(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), 0u64..1000), 0..16)
    ) {
        let src = compose(&picks);
        let lexed = lex(&src);
        let scanned = scan(&src);
        prop_assert_eq!(lexed.lines.len(), scanned.len(), "line counts differ for:\n{}", src);
        for (i, (l, s)) in lexed.lines.iter().zip(&scanned).enumerate() {
            prop_assert_eq!(
                &l.code, &s.code,
                "code channel differs on line {} of:\n{}", i + 1, src
            );
            prop_assert_eq!(
                &l.comment, &s.comment,
                "comment channel differs on line {} of:\n{}", i + 1, src
            );
        }
    }

    /// Cross-check the channels against the token stream: every
    /// identifier token the lexer emits must appear in the scanner's
    /// blanked code channel for its line — i.e. the scanner never blanks
    /// real code, and the lexer never tokenizes literal interiors.
    #[test]
    fn idents_respect_blanking(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), 0u64..1000), 0..16)
    ) {
        let src = compose(&picks);
        let lexed = lex(&src);
        let scanned = scan(&src);
        for t in &lexed.toks {
            if t.kind == TokKind::Ident {
                let line = &scanned[t.line as usize - 1].code;
                prop_assert!(
                    line.contains(t.text.as_str()),
                    "ident `{}` from line {} missing from scanner code channel `{}` of:\n{}",
                    t.text, t.line, line, src
                );
            }
        }
    }
}

/// Deterministic spot-checks for the corners the proptest corpus is
/// seeded around, so a regression names the exact construct.
#[test]
fn agreement_on_known_tricky_inputs() {
    for src in [
        "let s = \"a\\\"unwrap()\\\"b\"; next();",
        "let s = r##\"nested \"# almost\"##; f();",
        "let c = '\\''; let lt: &'a str = x;",
        "/* a /* b */ c */ d(); /* e",
        "still */ f();",
        "let s = \"unterminated",
    ] {
        let lexed = lex(src);
        let scanned = scan(src);
        assert_eq!(lexed.lines.len(), scanned.len(), "input: {src}");
        for (l, s) in lexed.lines.iter().zip(&scanned) {
            assert_eq!(l.code, s.code, "code channel, input: {src}");
            assert_eq!(l.comment, s.comment, "comment channel, input: {src}");
        }
    }
}
