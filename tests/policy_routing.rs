//! Integration tests for the policy-routing layer against the broker
//! evaluation layer: valley-free constraints, the conversion experiment,
//! and QoS accounting on stitched paths.

use broker_net::prelude::*;
use broker_net::routing::{
    directional_connectivity, inflation_report, stitch_path, valley_free_path, LatencyModel,
    PolicyGraph,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (Internet, BrokerSelection) {
    let net = InternetConfig::scaled(Scale::Tiny).generate(77);
    let sel = max_subgraph_greedy(net.graph(), 70);
    (net, sel)
}

#[test]
fn directionality_ordering() {
    // bidirectional >= valley-free >= valley-free + domination.
    let (net, sel) = setup();
    let g = net.graph();
    let pg = PolicyGraph::new(&net);
    let mode = SourceMode::Sampled {
        count: 150,
        seed: 3,
    };

    let bidir = saturated_connectivity(g, sel.brokers()).fraction;
    let vf_free = directional_connectivity(&pg, None, mode).fraction;
    let vf_dom = directional_connectivity(&pg, Some(sel.brokers()), mode).fraction;
    assert!(vf_free >= vf_dom - 1e-9);
    assert!(
        bidir >= vf_dom - 0.02,
        "bidirectional {bidir} should upper-bound dominated valley-free {vf_dom}"
    );
}

#[test]
fn conversion_sweep_is_monotone() {
    let (net, sel) = setup();
    let pg = PolicyGraph::new(&net);
    let mode = SourceMode::Sampled {
        count: 150,
        seed: 3,
    };
    let mut last = directional_connectivity(&pg, Some(sel.brokers()), mode).fraction;
    for frac in [0.25, 0.5, 1.0] {
        let mut converted = pg.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        converted.convert_interbroker_to_peering(sel.brokers(), frac, &mut rng);
        let cur = directional_connectivity(&converted, Some(sel.brokers()), mode).fraction;
        assert!(
            cur >= last - 0.01,
            "conversion {frac}: connectivity regressed {last} -> {cur}"
        );
        last = cur;
    }
}

#[test]
fn inflation_small_for_dominating_alliance() {
    let (net, sel) = setup();
    let g = net.graph();
    let rep = inflation_report(g, sel.brokers(), 8, SourceMode::Exact);
    assert!(rep.max_gap < 0.12, "max inflation gap {}", rep.max_gap);
    // Curves saturate to their saturated connectivities.
    let sat = saturated_connectivity(g, sel.brokers()).fraction;
    assert!((rep.dominated.at(8) - sat).abs() < 0.02);
}

#[test]
fn stitched_path_latency_is_accountable() {
    let (net, sel) = setup();
    let g = net.graph();
    let model = LatencyModel::sample(&net, 4);
    let pg = PolicyGraph::new(&net);

    let mut found = 0;
    for (u, v) in [(0u32, 900u32), (3, 500), (10, 1000), (100, 800)] {
        let (u, v) = (NodeId(u), NodeId(v));
        if let Some(p) = stitch_path(g, sel.brokers(), u, v) {
            let qos = model
                .path_latency(&p.path)
                .expect("stitched paths use real edges");
            assert!(qos > 0.0);
            found += 1;
            // Compare against the BGP-style default when one exists.
            if let Some(default) = valley_free_path(&pg, u, v) {
                let d = model.path_latency(&default).unwrap();
                assert!(d > 0.0);
                // No universal ordering; both must simply be finite and
                // hop counts sane.
                assert!(p.hops() >= 1 && default.len() >= 2);
            }
        }
    }
    assert!(found >= 2, "too few stitched pairs ({found})");
}

#[test]
fn ixps_never_originate_valley_violations() {
    // Paths through IXPs are still valley-free in the policy model:
    // sample valley-free paths and re-verify them hop by hop.
    let (net, _) = setup();
    let pg = PolicyGraph::new(&net);
    let g = net.graph();
    let mut checked = 0;
    for u in (0..g.node_count() as u32).step_by(97) {
        for v in (1..g.node_count() as u32).step_by(131) {
            if u == v {
                continue;
            }
            if let Some(p) = valley_free_path(&pg, NodeId(u), NodeId(v)) {
                assert!(
                    broker_net::routing::valleyfree::is_valley_free(&pg, &p),
                    "returned path is not valley-free: {p:?}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 20, "too few paths checked ({checked})");
}
