//! End-to-end test of the `broker_cli` binary: generate → stats →
//! select → eval → export (plus chaos, evolve, index and plan), through
//! the real executable.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_broker_cli"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("broker-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = tmpdir();
    let snap = dir.join("net.json");
    let dot = dir.join("net.dot");

    // generate
    let out = cli()
        .args(["generate", "tiny", "7", snap.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(snap.exists());

    // stats
    let out = cli()
        .args(["stats", snap.to_str().unwrap()])
        .output()
        .expect("spawn stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ASes:"), "stats output: {text}");

    // select
    let out = cli()
        .args(["select", snap.to_str().unwrap(), "maxsg", "20"])
        .output()
        .expect("spawn select");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("20 brokers selected by maxsg"), "{text}");

    // eval
    let out = cli()
        .args(["eval", snap.to_str().unwrap(), "greedy", "40"])
        .output()
        .expect("spawn eval");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("saturated E2E connectivity"), "{text}");
    assert!(text.contains("l = 3:"), "{text}");

    // export with highlighted brokers
    let out = cli()
        .args([
            "export",
            snap.to_str().unwrap(),
            dot.to_str().unwrap(),
            "10",
        ])
        .output()
        .expect("spawn export");
    assert!(out.status.success());
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("graph topology {"));
    assert!(dot_text.contains("fillcolor=gold"));

    // chaos drill with its self-validating certificate
    let out = cli()
        .args(["chaos", snap.to_str().unwrap(), "maxsg", "30"])
        .output()
        .expect("spawn chaos");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chaos drill over"), "{text}");
    assert!(text.contains("all invariants hold"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evolve_reports_swaps_and_records_stream() {
    let dir = tmpdir();
    let snap = dir.join("evolving.json");
    let rec = dir.join("evolve-record.json");
    assert!(cli()
        .args(["generate", "tiny", "7", snap.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    let out = cli()
        .args([
            "evolve",
            snap.to_str().unwrap(),
            "6",
            "40",
            "13",
            "--record",
            rec.to_str().unwrap(),
        ])
        .output()
        .expect("spawn evolve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("epoch  0:"), "{text}");
    assert!(text.contains("epoch  6:"), "{text}");
    assert!(text.contains("ledger:"), "{text}");
    assert!(text.contains("all invariants hold"), "{text}");

    // The --record blob holds the replayable stream and one report per
    // epoch.
    let blob: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&rec).unwrap()).expect("record parses");
    assert_eq!(blob["seed"].as_u64(), Some(13));
    assert_eq!(blob["reports"].as_array().map(|a| a.len()), Some(6));
    assert!(blob["stream"].as_object().is_some(), "stream missing");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_build_and_query_roundtrip() {
    let dir = tmpdir();
    let snap = dir.join("idx-net.json");
    let idx = dir.join("net.bri");
    assert!(cli()
        .args(["generate", "tiny", "7", snap.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    // build: precompute and persist the BRI1 blob.
    let out = cli()
        .args([
            "index",
            "build",
            snap.to_str().unwrap(),
            "maxsg",
            "20",
            idx.to_str().unwrap(),
        ])
        .output()
        .expect("spawn index build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("20-broker"), "{text}");
    assert!(text.contains("digest"), "{text}");
    assert!(idx.exists());

    // query: a vertex can always stitch to itself within any bound.
    let out = cli()
        .args(["index", "query", idx.to_str().unwrap(), "5", "5", "3"])
        .output()
        .expect("spawn index query");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stitch 5 -> 5"), "{text}");

    // Out-of-range endpoints are a clean miss, not a crash.
    let out = cli()
        .args(["index", "query", idx.to_str().unwrap(), "0", "999999", "6"])
        .output()
        .expect("spawn index query miss");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no dominated stitch"), "{text}");

    // Unknown subcommand and missing operands are usage errors.
    let out = cli().args(["index", "frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown index subcommand"));
    let out = cli()
        .args(["index", "query", idx.to_str().unwrap(), "1", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing hop bound"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_round_trips_with_certificate_and_rejects_malformed_args() {
    let dir = tmpdir();
    let snap = dir.join("plan-net.json");
    assert!(cli()
        .args(["generate", "tiny", "7", snap.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    // A 40 -> 50 broker reconfiguration: summary, antichain schedule,
    // execution trace and a passing certificate.
    let out = cli()
        .args(["plan", snap.to_str().unwrap(), "maxsg", "40", "50"])
        .output()
        .expect("spawn plan");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("plan 40 -> 50 brokers (maxsg)"), "{text}");
    assert!(text.contains("antichain 0:"), "{text}");
    assert!(text.contains("activate("), "{text}");
    assert!(text.contains("cut states\nvalidated"), "{text}");
    assert!(text.contains("certificate:"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");

    // The same budgets twice is an empty plan — still a valid,
    // certified reconfiguration.
    let out = cli()
        .args(["plan", snap.to_str().unwrap(), "maxsg", "40", "40"])
        .output()
        .expect("spawn no-op plan");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 steps"), "{text}");

    // Malformed invocations are usage errors: exit code 2 exactly.
    let out = cli()
        .args(["plan", snap.to_str().unwrap(), "maxsg", "40"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing k_to"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    let out = cli()
        .args(["plan", snap.to_str().unwrap(), "magic", "40", "50"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    let out = cli()
        .args(["plan", snap.to_str().unwrap(), "maxsg", "forty", "50"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad k"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_input() {
    // Unknown command.
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");

    // Unknown algorithm on a real snapshot.
    let dir = tmpdir();
    let snap = dir.join("n.json");
    assert!(cli()
        .args(["generate", "tiny", "1", snap.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let out = cli()
        .args(["select", snap.to_str().unwrap(), "magic", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // Missing snapshot.
    let out = cli()
        .args(["stats", "/definitely/missing.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // A --record flag with no path is a usage error: exit code 2
    // exactly, with the usage text on stderr.
    let out = cli()
        .args(["evolve", snap.to_str().unwrap(), "4", "20", "--record"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--record expects a file path"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // Non-numeric epoch count: usage error as well.
    let out = cli()
        .args(["evolve", snap.to_str().unwrap(), "soon", "20"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad epoch count"));

    std::fs::remove_dir_all(&dir).ok();
}
