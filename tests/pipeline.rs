//! End-to-end integration: topology generation → broker selection →
//! connectivity evaluation → routing → economics, across crate
//! boundaries, at a scale small enough for CI.

use broker_net::prelude::*;
use brokerset::{
    approx_mcbg, composition_histogram, degree_based, ixp_based, set_cover, tier1_only,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_net() -> Internet {
    InternetConfig::scaled(Scale::Tiny).generate(2014)
}

#[test]
fn headline_result_shape_holds_at_tiny_scale() {
    // The paper's Table 1 shape: tiny broker fractions yield large
    // connectivity fractions, with strong diminishing returns.
    let net = tiny_net();
    let g = net.graph();
    let n = g.node_count();
    let run = max_subgraph_greedy(g, (n as f64 * 0.068) as usize);

    let at = |frac: f64| {
        let k = ((n as f64 * frac) as usize).max(1);
        saturated_connectivity(g, run.truncated(k).brokers()).fraction
    };
    let small = at(0.0019);
    let mid = at(0.019);
    let big = at(0.068);
    assert!(small > 0.02, "0.19% budget gives {small}");
    assert!(mid > 0.60, "1.9% budget gives {mid}");
    assert!(big > 0.97, "6.8% budget gives {big}");
    assert!(small < mid && mid < big);
}

#[test]
fn all_selection_algorithms_produce_valid_sets() {
    let net = tiny_net();
    let g = net.graph();
    let k = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let selections = vec![
        greedy_mcb(g, k),
        max_subgraph_greedy(g, k),
        approx_mcbg(g, k, &ApproxConfig::paper()),
        degree_based(g, k),
        brokerset::pagerank_based(g, k),
        ixp_based(&net, 0),
        tier1_only(&net),
        set_cover(g, &mut rng),
    ];
    for sel in selections {
        assert!(!sel.is_empty(), "{} produced nothing", sel.algorithm());
        // Every broker is a real vertex and the set matches the order.
        assert_eq!(sel.brokers().len(), sel.order().len());
        for &b in sel.order() {
            assert!(b.index() < g.node_count());
        }
        // Connectivity evaluation runs on any of them.
        let rep = saturated_connectivity(g, sel.brokers());
        assert!(rep.fraction >= 0.0 && rep.fraction <= 1.0);
    }
}

#[test]
fn greedy_beats_or_matches_baselines_at_equal_budget() {
    let net = tiny_net();
    let g = net.graph();
    let k = 30;
    let greedy = saturated_connectivity(g, greedy_mcb(g, k).brokers()).fraction;
    let db = saturated_connectivity(g, degree_based(g, k).brokers()).fraction;
    let prb = saturated_connectivity(g, brokerset::pagerank_based(g, k).brokers()).fraction;
    assert!(greedy >= db - 0.02, "greedy {greedy} vs DB {db}");
    assert!(greedy >= prb - 0.02, "greedy {greedy} vs PRB {prb}");
}

#[test]
fn stitched_paths_agree_with_connectivity_report() {
    // If the evaluator says a pair is connected, stitching must find a
    // dominating path, and vice versa (sampled).
    let net = tiny_net();
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 50);
    let comps = brokerset::dominated_components(g, sel.brokers());
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    use rand::Rng;
    for _ in 0..200 {
        let u = NodeId(rng.gen_range(0..g.node_count() as u32));
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        if u == v {
            continue;
        }
        let connected = comps.label[u.index()] == comps.label[v.index()]
            && comps.sizes[comps.label[u.index()] as usize] > 1;
        let stitched = broker_net::routing::stitch_path(g, sel.brokers(), u, v);
        assert_eq!(
            connected,
            stitched.is_some(),
            "evaluator and stitcher disagree on ({u}, {v})"
        );
        if let Some(p) = stitched {
            assert!(brokerset::connectivity::is_dominating_path(
                g,
                sel.brokers(),
                &p.path
            ));
        }
    }
}

#[test]
fn composition_spans_kinds_and_includes_ixps() {
    let net = tiny_net();
    let sel = max_subgraph_greedy(net.graph(), 80);
    let hist = composition_histogram(&net, &sel);
    // [tier1, transit, access, content, enterprise, ixp]
    assert!(hist[5] > 0, "no IXPs selected");
    assert!(hist[1] > 0, "no transit selected");
    assert_eq!(hist.iter().sum::<usize>(), sel.len());
}

#[test]
fn snapshot_roundtrip_preserves_selection_results() {
    let net = tiny_net();
    let dir = std::env::temp_dir().join("broker-net-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net.json");
    topology::save_snapshot(&net, &path).unwrap();
    let back = topology::load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = max_subgraph_greedy(net.graph(), 25);
    let b = max_subgraph_greedy(back.graph(), 25);
    assert_eq!(a.order(), b.order());
}

#[test]
fn economics_pipeline_consumes_measured_coverage() {
    // Coverage-derived coalition values flow into the Shapley split.
    let net = tiny_net();
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 6);
    let players: Vec<NodeId> = sel.order().to_vec();
    let mut table = vec![0.0; 1 << players.len()];
    for (mask, v) in table.iter_mut().enumerate().skip(1) {
        let set = NodeSet::from_iter_with_capacity(
            g.node_count(),
            players
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask >> j & 1 == 1)
                .map(|(_, &p)| p),
        );
        *v = 100.0 * saturated_connectivity(g, &set).fraction;
    }
    let game = economics::coalition::TableGame::new(table);
    let shapley = economics::shapley_exact(&game);
    assert!(shapley.is_efficient(&game, 1e-6));
    // The first-selected broker carries at least an average share of the
    // coalition value (greedy picked it for its coverage, though pure
    // Shapley ordering can differ from selection order).
    let first = shapley.values[0];
    let mean = shapley.values.iter().sum::<f64>() / shapley.values.len() as f64;
    assert!(
        first >= mean - 1e-9,
        "first broker {first} below mean {mean}"
    );
    for &v in &shapley.values {
        assert!(v >= -1e-9, "negative Shapley share {v}");
    }
}
