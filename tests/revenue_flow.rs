//! Integration: the Section 7 money flow over real stitched paths.
//!
//! Prices from the Stackelberg equilibrium and the Nash bargain are
//! applied to concrete B-dominating paths stitched on the generated
//! topology, and the aggregate ledger must come out profitable — the
//! paper's overall economic-feasibility claim, computed end to end.

use broker_net::prelude::*;
use broker_net::routing::stitch_path;
use economics::{
    account_path, nash_bargain, AggregateLedger, BargainConfig, CustomerAs, StackelbergGame, Tariff,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn alliance_is_profitable_over_stitched_traffic() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(303);
    let g = net.graph();
    let n = g.node_count();
    let alliance = max_subgraph_greedy(g, (n as f64 * 0.068) as usize);

    // Price the product.
    let game = StackelbergGame {
        customers: vec![
            CustomerAs {
                qos_revenue: 5.0,
                qos_saturation: 2.0,
                transit_scale: 1.5,
                transit_peak: 0.6,
                adoption_floor: 0.05,
            };
            50
        ],
        unit_cost: 0.4,
        hire_overhead: 0.2,
        max_price: 30.0,
    };
    let eq = game.equilibrium().expect("valid game");
    assert!(eq.leader_utility > 0.0);

    // Hire employees at the bargained price.
    let bargain = nash_bargain(&BargainConfig {
        broker_price: eq.price,
        routing_cost: 0.3,
        beta: 4,
    })
    .expect("valid bargain");
    assert!(
        bargain.agreement,
        "no employee agreement at price {}",
        eq.price
    );

    let tariff = Tariff {
        broker_price: eq.price,
        employee_price: bargain.employee_price,
        hop_cost: 0.3,
    };

    // Route sampled traffic and account it.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut ledger = AggregateLedger::default();
    let mut broker_only = 0usize;
    for _ in 0..500 {
        let u = NodeId(rng.gen_range(0..n as u32));
        let v = NodeId(rng.gen_range(0..n as u32));
        if u == v {
            continue;
        }
        let Some(path) = stitch_path(g, alliance.brokers(), u, v) else {
            continue;
        };
        if path.broker_only() {
            broker_only += 1;
        }
        ledger.add(account_path(&tariff, path.hops(), path.hired_employees()));
    }
    assert!(
        ledger.paths > 300,
        "too few routable pairs: {}",
        ledger.paths
    );
    assert!(
        ledger.profit > 0.0,
        "alliance loses money over sampled traffic: {ledger:?}"
    );
    // Fig 5a: the overwhelming majority of connections need no hired
    // employee at all.
    let frac = broker_only as f64 / ledger.paths as f64;
    assert!(frac > 0.85, "broker-only fraction {frac}");
    // Employee payouts are therefore a small share of revenue.
    assert!(ledger.employee_payout < 0.2 * ledger.revenue);
}

#[test]
fn employee_count_bounded_by_bargain_assumption() {
    // The Nash bargain assumes at most ceil(beta/2) employees per path;
    // check stitched paths against it on the (0.99, 4)-graph.
    let net = InternetConfig::scaled(Scale::Tiny).generate(304);
    let g = net.graph();
    let alliance = max_subgraph_greedy(g, 80);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut over_budget = 0usize;
    let mut total = 0usize;
    for _ in 0..400 {
        let u = NodeId(rng.gen_range(0..g.node_count() as u32));
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        if u == v {
            continue;
        }
        if let Some(path) = stitch_path(g, alliance.brokers(), u, v) {
            total += 1;
            if path.hired_employees() > 2 {
                over_budget += 1;
            }
        }
    }
    assert!(total > 200);
    // The alpha-tail: a small fraction may exceed the beta/2 bound.
    assert!(
        (over_budget as f64) < 0.05 * total as f64,
        "{over_budget}/{total} paths exceed the employee budget"
    );
}
