//! Cross-crate correctness gate: re-verify, at the scale the bench
//! harness uses for Table 1, that the claims the crates make about each
//! other actually hold — coverage claims are backed by dominating paths,
//! valley-free paths replay through the phase machine, and Shapley
//! revenue splits are efficient.

use broker_net::prelude::*;
use brokerset::CoverageCertificate;
use routing::{valley_free_path, PathCertificate, PolicyGraph};

/// Every selection algorithm's coverage claims survive independent
/// re-verification on a Table-1-scale topology.
#[test]
fn table1_scale_coverage_claims_verify() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    assert!(net.audit().is_ok(), "{}", net.audit());
    for (alg, sel) in [
        ("maxsg", brokerset::max_subgraph_greedy(g, 40)),
        ("greedy", brokerset::greedy_mcb(g, 40)),
        ("db", brokerset::degree_based(g, 40)),
    ] {
        let rep = sel.audit();
        assert!(rep.is_ok(), "{alg}: {rep}");
        let cert = CoverageCertificate::sampled(g, &sel, 300, 7);
        assert!(
            cert.pair_count() >= 200,
            "{alg}: only {} claimed pairs sampled",
            cert.pair_count()
        );
        let rep = cert.audit();
        assert!(rep.is_ok(), "{alg}: {rep}");
    }
}

/// A full plan (generate → select → evaluate) audits clean end to end.
#[test]
fn full_plan_audits_clean() {
    let plan = BrokeragePlan::build(Scale::Tiny, 7, 40);
    let rep = plan.audit();
    assert!(rep.is_ok(), "{rep}");
    assert!(
        rep.checks > 20,
        "expected a deep audit, got {} checks",
        rep.checks
    );
}

/// Valley-free paths found on a generated Internet certify hop by hop.
#[test]
fn policy_paths_certify_at_scale() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let pg = PolicyGraph::new(&net);
    let n = pg.node_count();
    let mut certified = 0usize;
    for (src, dst) in (0..40).map(|i| (NodeId(i), NodeId((n as u32) - 1 - i))) {
        if let Some(path) = valley_free_path(&pg, src, dst) {
            let rep = PathCertificate::new(&pg, &path).audit();
            assert!(rep.is_ok(), "{src} -> {dst}: {rep}");
            certified += 1;
        }
    }
    assert!(certified > 0, "no valley-free pairs sampled at all");
}

/// The economics layer's efficiency identity holds for a coverage-derived
/// coalition game, and the lint gate's own report self-audits.
#[test]
fn side_layers_self_audit() {
    let game = economics::coalition::TableGame::new(
        (0u32..16).map(|m| (m.count_ones() as f64).sqrt()).collect(),
    );
    let result = economics::shapley_exact(&game);
    let rep = economics::ShapleyCertificate::new(&game, &result).audit();
    assert!(rep.is_ok(), "{rep}");
}
