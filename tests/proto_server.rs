//! Live-server fuzz and property tests of the `brokerd` wire protocol:
//! a real TCP server ([`proto::Listener`] + [`proto::serve`]) over a
//! small index must answer malformed frames — truncated length
//! prefixes, oversize declarations, unknown opcodes, short payloads,
//! arbitrary garbage — with clean [`Response::Error`] replies and keep
//! serving fresh connections afterwards. The server thread panicking or
//! wedging fails the test via the final handshake and join.

use broker_net::proto::{self, errcode, Request, Response, ServeCounters, MAX_FRAME};
use brokerset::ReachIndex;
use netgraph::{GraphBuilder, NodeId, NodeSet};
use proptest::prelude::*;
use std::sync::Arc;

/// An 8-vertex path 0-1-2-3-4-5-6-7 with brokers {2, 5}. Dominated
/// edges need a broker endpoint, so the index sees two stars —
/// {1,2,3} around broker 2 and {4,5,6} around broker 5 — giving a mix
/// of hits (within a star) and misses (across stars, or from the
/// undominated endpoints 0 and 7).
fn small_index() -> Arc<ReachIndex> {
    let mut b = GraphBuilder::new(8);
    for i in 0..7 {
        b.add_edge(NodeId(i), NodeId(i + 1));
    }
    let g = b.build();
    let brokers = NodeSet::from_iter_with_capacity(8, [2, 5].map(NodeId));
    Arc::new(ReachIndex::build(&g, &brokers, 6, 1))
}

/// Accept-loop harness mirroring `brokerd`: serve connections
/// sequentially until one requests shutdown. Returns the bound port and
/// the join handle (joining proves the server thread never panicked).
fn spawn_server(index: Arc<ReachIndex>) -> (u16, std::thread::JoinHandle<()>) {
    let listener = proto::Listener::bind(0).expect("bind ephemeral port");
    let port = listener.port().expect("bound port");
    let handle = std::thread::spawn(move || {
        let counters = ServeCounters::new();
        loop {
            let Ok(conn) = listener.accept() else { break };
            match proto::serve(conn, &index, &counters, 1) {
                Ok(true) => break,
                Ok(false) => {}
                Err(_) => {} // transport hiccup: keep accepting
            }
        }
    });
    (port, handle)
}

fn shutdown(port: u16, handle: std::thread::JoinHandle<()>) {
    let mut conn = proto::Conn::connect(port).expect("connect for shutdown");
    let bye = conn
        .request(&Request::Shutdown)
        .expect("shutdown round trip");
    assert!(matches!(bye, Response::Bye), "expected BYE, got {bye:?}");
    handle.join().expect("server thread panicked");
}

/// A full frame around a raw body (length prefix included).
fn raw_frame(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

#[test]
fn malformed_frames_get_error_replies_and_the_server_survives() {
    let (port, handle) = spawn_server(small_index());

    // The harness serves one connection at a time, so every block below
    // must DROP its connection (end of scope) before the next one
    // connects — otherwise the accept loop never reaches the new client.
    {
        // Unknown opcode: error reply, connection stays usable.
        let mut conn = proto::Conn::connect(port).expect("connect");
        conn.send_raw(&raw_frame(&[0x7f])).expect("send bad opcode");
        match conn.read_response().expect("reply").expect("open") {
            Response::Error { code, message } => {
                assert_eq!(code, errcode::BAD_OPCODE);
                assert!(message.contains("0x7f"), "{message}");
            }
            other => panic!("expected error reply, got {other:?}"),
        }
        // ... same connection still answers a well-formed handshake.
        let hello = conn.request(&Request::Hello).expect("post-error hello");
        assert!(
            matches!(hello, Response::HelloOk { n: 8, k: 2, .. }),
            "{hello:?}"
        );

        // Short payload (QUERY with 3 of its 10 bytes): truncated error.
        conn.send_raw(&raw_frame(&[0x02, 1, 2, 3]))
            .expect("send short query");
        match conn.read_response().expect("reply").expect("open") {
            Response::Error { code, .. } => assert_eq!(code, errcode::TRUNCATED),
            other => panic!("expected error reply, got {other:?}"),
        }

        // Batch whose count disagrees with its length: malformed error.
        let mut body = vec![0x03];
        body.extend_from_slice(&9u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 10]);
        conn.send_raw(&raw_frame(&body)).expect("send bad batch");
        match conn.read_response().expect("reply").expect("open") {
            Response::Error { code, .. } => assert_eq!(code, errcode::MALFORMED),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    {
        // Oversize declaration: error reply, then the server hangs up
        // (the stream cannot be resynchronized).
        let mut conn = proto::Conn::connect(port).expect("connect oversize");
        conn.send_raw(&(MAX_FRAME + 1).to_le_bytes())
            .expect("send oversize prefix");
        match conn.read_response().expect("reply").expect("open") {
            Response::Error { code, .. } => assert_eq!(code, errcode::OVERSIZE),
            other => panic!("expected error reply, got {other:?}"),
        }
        assert!(
            conn.read_response().expect("read after close").is_none(),
            "connection must close after an oversize frame"
        );
    }

    {
        // Truncated length prefix (client dies mid-prefix): the server
        // just drops the connection — and must still accept the next.
        let mut conn = proto::Conn::connect(port).expect("connect truncated");
        conn.send_raw(&[5, 0]).expect("send partial prefix");
    }

    {
        let mut conn = proto::Conn::connect(port).expect("connect after abuse");
        let answer = conn
            .request(&Request::Query { s: 1, t: 3, l: 6 })
            .expect("query after abuse");
        assert!(
            matches!(answer, Response::Answer(Some(a)) if a.hops() <= 6),
            "{answer:?}"
        );
    }

    shutdown(port, handle);
}

#[test]
fn batch_and_stats_round_trip_over_tcp() {
    let index = small_index();
    let (port, handle) = spawn_server(Arc::clone(&index));
    let mut conn = proto::Conn::connect(port).expect("connect");
    let entries = vec![(0u32, 7u32, 6u16), (0, 7, 1), (3, 3, 2), (0, 99, 6)];
    match conn
        .request(&Request::Batch(entries.clone()))
        .expect("batch")
    {
        Response::BatchAnswers(answers) => {
            assert_eq!(answers.len(), entries.len());
            for (answer, &(s, t, l)) in answers.iter().zip(&entries) {
                assert_eq!(
                    *answer,
                    index.query(NodeId(s), NodeId(t), usize::from(l)),
                    "served batch entry ({s}, {t}, {l}) diverged from local evaluation"
                );
            }
        }
        other => panic!("expected batch answers, got {other:?}"),
    }
    match conn.request(&Request::Stats).expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.queries_served, entries.len() as u64);
            assert_eq!(stats.batches, 1);
            assert_eq!(stats.epoch, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(conn);
    shutdown(port, handle);
}

/// Readiness regression for the `serve_bench --attach` / `brokerd`
/// handshake: a client that starts before the listener exists must
/// bridge the gap with connect retries (no fixed sleeps on either
/// side), and a bounded retry budget against a dead port must report
/// the refusal instead of hanging.
#[test]
fn handshake_bridges_a_late_listener_and_bounded_retry_reports_refusal() {
    // Reserve an ephemeral port, then release it so the server can bind
    // it *after* the client has already started retrying.
    let probe = proto::Listener::bind(0).expect("probe bind");
    let port = probe.port().expect("probe port");
    drop(probe);

    // Nothing is listening yet: the bounded budget surfaces the error.
    let err = proto::Conn::connect_retry(port, 3).expect_err("no listener yet");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");

    let index = small_index();
    let server = std::thread::spawn(move || {
        // Bind late: the client below is already in its retry loop.
        std::thread::yield_now();
        let listener = proto::Listener::bind(port).expect("rebind reserved port");
        let counters = ServeCounters::new();
        loop {
            let Ok(conn) = listener.accept() else { break };
            if let Ok(true) = proto::serve(conn, &index, &counters, 1) {
                break;
            }
        }
    });

    // The HELLO reply doubles as the readiness signal: once it arrives
    // the server is provably serving, with no sleep anywhere.
    let (mut conn, hello) = proto::Conn::handshake(port, 1_000_000).expect("handshake");
    assert!(
        matches!(hello, Response::HelloOk { n: 8, k: 2, .. }),
        "{hello:?}"
    );
    let bye = conn.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(bye, Response::Bye), "expected BYE, got {bye:?}");
    server.join().expect("server thread panicked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary garbage bodies inside a well-formed length prefix: the
    /// server always sends back *some* frame (a valid response or an
    /// error), never panics, and the next handshake still works.
    #[test]
    fn garbage_frames_never_wedge_the_server(
        bodies in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            1..5,
        ),
    ) {
        let (port, handle) = spawn_server(small_index());
        for body in &bodies {
            // Steer clear of the one frame that is SUPPOSED to stop the
            // server: a lone SHUTDOWN opcode.
            let mut body = body.clone();
            if body.first() == Some(&0x05) {
                body[0] = 0x00;
            }
            let mut conn = proto::Conn::connect(port).expect("connect");
            conn.send_raw(&raw_frame(&body)).expect("send garbage");
            let reply = conn.read_response().expect("transport ok");
            prop_assert!(reply.is_some(), "server closed without replying");
        }
        let mut conn = proto::Conn::connect(port).expect("final connect");
        let hello = conn.request(&Request::Hello).expect("final hello");
        prop_assert!(matches!(hello, Response::HelloOk { .. }));
        drop(conn);
        shutdown(port, handle);
    }
}
