//! Offline stand-in for the `serde` crate.
//!
//! The real serde streams through a visitor-based data model; this
//! stand-in materializes a [`Value`] tree instead, which is all the
//! workspace needs (JSON snapshots and experiment records measured in
//! megabytes, written once per run). The public surface mirrors what the
//! broker-net crates use: `#[derive(Serialize, Deserialize)]`, the
//! [`Serialize`]/[`Deserialize`] traits, and blanket impls for the std
//! types that appear in snapshot/record structs.
//!
//! JSON text encoding/decoding of the [`Value`] tree lives in the sibling
//! `serde_json` stand-in.
#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Value};

/// Convert `self` into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    ///
    /// # Errors
    ///
    /// [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Legacy-path aliases so both `serde::Serialize` and
/// `serde::de::Deserialize`-style imports resolve.
pub mod ser {
    pub use crate::Serialize;
}

/// See [`ser`].
pub mod de {
    pub use crate::Deserialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("tuple array", v))?;
                let expect = 0usize $(+ { let _ = $idx; 1 })+;
                if arr.len() != expect {
                    return Err(Error::new(format!(
                        "expected tuple of {expect}, got array of {}", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S> Deserialize for std::collections::HashMap<String, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn numeric_coercions() {
        // u64 from a parser-produced Int.
        assert_eq!(u64::from_value(&Value::Int(5)).unwrap(), 5);
        // f64 from an integer-looking token.
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        // Range errors surface.
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_and_containers() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let pair = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }
}
