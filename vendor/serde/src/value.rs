//! The self-describing value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Numbers keep three representations so integers survive round-trips
/// exactly: [`Value::Int`] for signed, [`Value::UInt`] for values above
/// `i64::MAX`, and [`Value::Float`] for everything fractional. Equality
/// compares numerically across the three.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer above `i64::MAX` (or written by unsigned types).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

/// A `Null` to lend out when an object key is absent (lets `Option`
/// fields tolerate missing keys without allocating).
pub static NULL: Value = Value::Null;

/// Look up `key` in object entries, lending [`static@NULL`] when absent.
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            Value::Float(f) if f.fract() == 0.0 && f >= 0.0 && f < 2f64.powi(64) => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries in insertion order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field or array index access; `None` on shape mismatch.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.get_in(self)
    }

    /// Short tag for diagnostics ("object", "array", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                // Numeric variants compare by value (5, 5u64, 5.0 equal).
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

/// Polymorphic index for [`Value::get`].
pub trait ValueIndex {
    /// Resolve the lookup inside `v`.
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object()?
            .iter()
            .find(|(k, _)| k == self)
            .map(|(_, v)| v)
    }
}

impl ValueIndex for usize {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array()?.get(*self)
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        self.get(index).unwrap_or(&NULL)
    }
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        }
    )*};
}

impl_from!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64, isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64, usize => UInt as u64,
    f32 => Float as f64, f64 => Float as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

macro_rules! impl_partial_eq_prim {
    ($($t:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            // Comparing through a temporary Value keeps the numeric
            // coercion rules in one place; these comparisons only run in
            // tests, so the allocation-free route isn't worth the
            // duplication.
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(*other)
            }
        }
        impl PartialEq<Value> for $t {
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &Value) -> bool {
                *other == Value::from(*self)
            }
        }
    )*};
}

impl_partial_eq_prim!(i32, i64, u32, u64, usize, f64, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

/// Shape-mismatch error raised while rebuilding typed data from a
/// [`Value`] tree.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// Reverse field path to the failure (innermost first).
    path: Vec<String>,
}

impl Error {
    /// A free-form error.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// "expected X, got Y" shape mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::new(format!("expected {what}, got {}", got.kind()))
    }

    /// Wrap with the name of the field being parsed.
    #[must_use]
    pub fn in_field(mut self, name: &str) -> Self {
        self.path.push(name.to_string());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let mut path: Vec<&str> = self.path.iter().map(String::as_str).collect();
            path.reverse();
            write!(f, "at .{}: {}", path.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_equality_across_variants() {
        assert_eq!(Value::Int(5), Value::UInt(5));
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert_ne!(Value::Int(5), Value::Float(5.5));
        assert_ne!(Value::Int(5), Value::Str("5".into()));
    }

    #[test]
    fn get_and_index() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
        )]);
        assert_eq!(v["xs"][1], Value::Int(2));
        assert!(v.get("missing").is_none());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn error_path_rendering() {
        let e = Error::new("boom").in_field("inner").in_field("outer");
        assert_eq!(e.to_string(), "at .outer.inner: boom");
    }
}
