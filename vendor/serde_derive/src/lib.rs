//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, since the
//! build container has no registry access). Supports the shapes the
//! workspace actually derives on: non-generic structs (unit / tuple /
//! named) and enums whose variants are unit, tuple, or struct-like, using
//! serde's externally-tagged representation.
#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        _ => return Err("serde derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i).ok_or("serde derive: missing item name")?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stand-in does not support generic type `{name}`"
        ));
    }

    if kind == "struct" {
        match tokens.get(i) {
            None => Ok(Item::Struct(name, Fields::Unit)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct(name, Fields::Unit)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct(
                name,
                Fields::Named(parse_named_fields(g.stream())?),
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(
                Item::Struct(name, Fields::Tuple(count_tuple_fields(g.stream()))),
            ),
            Some(tt) => Err(format!(
                "serde derive: unexpected token after struct name: {tt}"
            )),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
            _ => Err("serde derive: expected enum body".into()),
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // (crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Parse `name: Type, ...` returning field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(tt) => return Err(format!("serde derive: expected field name, got {tt}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tt in &tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // Tolerate a trailing comma: `(A, B,)` has 2 fields, not 3.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(tt) => return Err(format!("serde derive: expected variant name, got {tt}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant `= expr` up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(tt) = tokens.get(i) {
                if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => obj_expr(names.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            impl_block(
                name,
                "Serialize",
                &format!("fn to_value(&self) -> ::serde::Value {{ {body} }}"),
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => {obj},",
                            binds = binds.join(", "),
                            obj = tagged(v, &payload)
                        )
                    }
                    Fields::Named(fs) => {
                        let payload =
                            obj_expr(fs.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        format!(
                            "{name}::{v} {{ {fields} }} => {obj},",
                            fields = fs.join(", "),
                            obj = tagged(v, &payload)
                        )
                    }
                })
                .collect();
            impl_block(
                name,
                "Serialize",
                &format!(
                    "fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}",
                    arms.join(" ")
                ),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Unit => format!(
                    "if v.is_null() {{ Ok({name}) }} else {{ \
                     Err(::serde::Error::expected(\"null\", v)) }}"
                ),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = v.as_array().ok_or_else(|| \
                         ::serde::Error::expected(\"array\", v))?; \
                         if arr.len() != {n} {{ return Err(::serde::Error::new(format!(\
                         \"expected {n} elements, got {{}}\", arr.len()))); }} \
                         Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                             ::serde::value::field(obj, {f:?}))\
                             .map_err(|e| e.in_field({f:?}))?,"
                            )
                        })
                        .collect();
                    format!(
                        "let obj = v.as_object().ok_or_else(|| \
                         ::serde::Error::expected(\"object\", v))?; \
                         Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
            };
            impl_block(
                name,
                "Deserialize",
                &format!(
                    "fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{ {body} }}"
                ),
            )
        }
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| {
                    let build = match fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "return Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(payload)\
                             .map_err(|e| e.in_field({v:?}))?));"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            format!(
                                "let arr = payload.as_array().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", payload))?; \
                                 if arr.len() != {n} {{ return Err(::serde::Error::new(\
                                 format!(\"variant {v} expects {n} elements, got {{}}\", \
                                 arr.len()))); }} \
                                 return Ok({name}::{v}({items}));",
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::value::field(obj, {f:?}))\
                                     .map_err(|e| e.in_field({f:?}))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "let obj = payload.as_object().ok_or_else(|| \
                                 ::serde::Error::expected(\"object\", payload))?; \
                                 return Ok({name}::{v} {{ {} }});",
                                inits.join(" ")
                            )
                        }
                    };
                    format!("{v:?} => {{ {build} }}")
                })
                .collect();
            let body = format!(
                "if let Some(s) = v.as_str() {{ \
                     match s {{ {units} _ => {{}} }} \
                     return Err(::serde::Error::new(format!(\
                     \"unknown variant {{s:?}} of {name}\"))); \
                 }} \
                 if let Some(obj) = v.as_object() {{ \
                     if obj.len() == 1 {{ \
                         let (tag, payload) = &obj[0]; \
                         match tag.as_str() {{ {tagged} _ => {{}} }} \
                         return Err(::serde::Error::new(format!(\
                         \"unknown variant {{tag:?}} of {name}\"))); \
                     }} \
                 }} \
                 Err(::serde::Error::expected(\"{name} variant\", v))",
                units = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            );
            impl_block(
                name,
                "Deserialize",
                &format!(
                    "fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{ {body} }}"
                ),
            )
        }
    }
}

fn tagged(variant: &str, payload: &str) -> String {
    format!("::serde::Value::Object(vec![({variant:?}.to_string(), {payload})])")
}

fn obj_expr(entries: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .map(|(k, v)| format!("({k:?}.to_string(), {v})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!("#[automatically_derived] impl ::serde::{trait_name} for {name} {{ {body} }}")
}
