//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of the criterion API for the workspace's
//! `harness = false` bench targets to build and produce useful numbers:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] (`iter`,
//! `iter_batched`), [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is plain wall clock with a fixed
//! warm-up and a median-of-samples report — no outlier analysis, HTML
//! reports, or comparison baselines.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work. A read-write volatile-ish barrier via `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// in this stand-in (setup runs once per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Parse CLI args (no-op here; accepts and ignores filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Finalize (no-op).
    pub fn final_summary(&self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Measures closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration count estimation.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~10ms per sample, capped to keep total runtime sane.
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name}: median {} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        per_iter.len(),
        b.iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
