//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a small, std-only implementation of exactly the `rand 0.8` API surface
//! the broker-net crates use: [`RngCore`], [`Rng`] (`gen_range`,
//! `gen_bool`), [`SeedableRng`] (including the PCG-based `seed_from_u64`
//! default that matches rand_core 0.6), [`seq::SliceRandom`]
//! (`shuffle`/`choose`), and [`distributions::WeightedIndex`].
//!
//! Deliberately absent: `thread_rng` and `rand::random`. Every random
//! stream in this workspace must be seeded for reproducibility (lint rule
//! R2 in `xtask`), and leaving the non-seeded entry points out turns that
//! policy into a compile error.
#![forbid(unsafe_code)]

pub mod distributions;
pub mod seq;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draw a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = uniform_below(rng, span as u128) as $wide;
                (self.start as $wide).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                // span == 0 would mean the full domain of a 128-bit type;
                // the widest type here is 64-bit, so span is exact.
                let v = uniform_below(rng, span) as $wide;
                (start as $wide).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Uniform integer in `[0, span)` via 64x64 widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64 * span,
/// far below anything the simulations can observe).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let x = rng.next_u64() as u128;
    ((x * span) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                // Clamp to stay strictly below `end` even after rounding.
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32 stream
    /// that `rand_core 0.6` uses, so seeded streams here line up with
    /// histories produced by the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: decorrelates the sequential counter.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Counter(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
