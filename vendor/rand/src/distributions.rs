//! Distribution sampling (`rand::distributions` subset).

use crate::{Rng, RngCore};

/// Types that produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WeightedError {
    /// The weight collection was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..weights.len()` proportionally to the weights,
/// via a cumulative table and binary search.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of non-negative finite weights.
    ///
    /// # Errors
    ///
    /// [`WeightedError`] when empty, containing an invalid weight, or
    /// summing to zero.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Into<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(0.0..self.total);
        // partition_point: first index whose cumulative weight exceeds x.
        // Zero-weight entries have cumulative[i] == cumulative[i - 1] and
        // can never be selected (x < cumulative[i] picks the first match).
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Splitmix(u64);
    impl RngCore for Splitmix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }

    #[test]
    fn proportional_sampling() {
        let dist = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut rng = Splitmix(42);
        let mut counts = [0u32; 3];
        for _ in 0..8000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.2..4.0).contains(&ratio), "ratio {ratio} not near 3");
    }

    #[test]
    fn integer_weights_accepted() {
        let dist = WeightedIndex::new([1u32, 2, 3]).unwrap();
        let mut rng = Splitmix(7);
        for _ in 0..100 {
            assert!(dist.sample(&mut rng) < 3);
        }
    }
}
