//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random operations on slices: in-place shuffling and element choice.
pub trait SliceRandom {
    /// Element type of the underlying slice.
    type Item;

    /// Fisher-Yates shuffle (same traversal order as `rand 0.8`:
    /// high index down to 1, partner drawn from `0..=i`).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

/// Random operations on iterators (`rand::seq::IteratorRandom` subset).
pub trait IteratorRandom: Iterator + Sized {
    /// Uniformly random element via reservoir sampling (size 1).
    fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = None;
        for (seen, item) in self.enumerate() {
            if Rng::gen_range(rng, 0..seen + 1) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 ^ (self.0 >> 29)
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = Lcg::seed_from_u64(2);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u32].choose(&mut rng), Some(&42));
    }

    #[test]
    fn iterator_choose_uniformish() {
        let mut rng = Lcg::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let x = (0..4u32).choose(&mut rng).unwrap();
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "counts skewed: {counts:?}");
        }
    }
}
