//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the ChaCha stream cipher (RFC 8439 quarter-round, 64-bit
//! block counter) as a deterministic seeded RNG behind the same type names
//! as the real crate: [`ChaCha8Rng`], [`ChaCha12Rng`], [`ChaCha20Rng`].
//! Output is a well-defined function of the seed, so every experiment in
//! the workspace is exactly reproducible from its recorded `u64` seed.
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Core ChaCha state generating 16-word blocks, generic in round count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (seed), little-endian.
    key: [u32; 8],
    /// 64-bit block counter, split across state words 12-13.
    counter: u64,
    /// Stream id, state words 14-15.
    stream: u64,
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word index into `buffer`; 16 means exhausted.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(key: [u32; 8]) -> Self {
        ChaChaCore {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (&s, &i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl $name {
            /// Select an independent stream (state words 14-15).
            pub fn set_stream(&mut self, stream: u64) {
                if self.core.stream != stream {
                    self.core.stream = stream;
                    self.core.index = 16;
                }
            }

            /// Current 64-bit word position hint: blocks consumed so far.
            pub fn get_word_pos(&self) -> u128 {
                (self.core.counter as u128) * 16 + self.core.index.min(16) as u128
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    core: ChaChaCore::new(key),
                }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the workspace's default seeded RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds (RFC 8439 strength)."
);

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the ChaCha20 keystream for the all-zero key,
    /// counter 0, nonce 0 begins `76 b8 e0 ad a0 f1 3d 90 ...`
    /// (a widely published reference vector), i.e. little-endian words
    /// `0xade0b876, 0x903df1a0, ...`.
    #[test]
    fn chacha20_zero_key_keystream() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0b876);
        assert_eq!(rng.next_u32(), 0x903df1a0);
    }

    #[test]
    fn deterministic_and_distinct_seeds() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        r2.set_stream(1);
        let s1: Vec<u32> = (0..16).map(|_| r1.next_u32()).collect();
        let s2: Vec<u32> = (0..16).map(|_| r2.next_u32()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn word_pos_advances() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let p0 = r.get_word_pos();
        r.next_u64();
        assert!(r.get_word_pos() > p0);
    }
}
