//! Offline stand-in for the `serde_json` crate.
//!
//! JSON text encoding/decoding for the vendored `serde` stand-in's
//! [`Value`] tree: [`to_string`], [`to_string_pretty`], [`to_vec`],
//! [`to_writer`], [`from_str`], [`from_reader`], and a [`json!`] macro.
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::Value;

mod parse;

/// Encoding or decoding failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Currently infallible for tree-shaped data; the `Result` mirrors the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text (2-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compact JSON into a writer.
///
/// # Errors
///
/// I/O errors from the writer, reported as [`Error`].
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Syntax errors and shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON from a reader into any `Deserialize` type.
///
/// # Errors
///
/// I/O errors, syntax errors, and shape mismatches.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(e.to_string()))?;
    from_str(&text)
}

/// Convert any `Serialize` type into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` mirrors the real crate.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Shape mismatches.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep a fractional marker so floats re-parse as floats.
            let _ = write!(out, "{f:.1}");
        } else {
            // Rust's shortest round-trip formatting.
            let _ = write!(out, "{f}");
        }
    } else {
        // JSON has no NaN/Infinity; the real crate writes null too.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] with JSON-literal syntax:
/// `json!({"k": [1, 2.5, "s", true, null]})`.
#[macro_export]
macro_rules! json {
    // Internal array muncher: builds up `[elem, elem,]` one value at a
    // time so element expressions may span many token trees.
    (@arr [$($elems:expr,)*]) => { $crate::Value::Array(vec![$($elems,)*]) };
    (@arr [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@arr [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($elems,)* $crate::json!([$($inner)*]),] $($($rest)*)?)
    };
    (@arr [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json!(@arr [$($elems,)* $crate::json!({$($inner)*}),] $($($rest)*)?)
    };
    (@arr [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json!(@arr [$($elems,)* $crate::Value::from($next),] $($rest)*)
    };
    (@arr [$($elems:expr,)*] $last:expr) => {
        $crate::json!(@arr [$($elems,)* $crate::Value::from($last),])
    };
    // Internal object muncher: keys are literals, values are arbitrary
    // expressions or nested JSON literals.
    (@obj [$($pairs:expr,)*]) => { $crate::Value::Object(vec![$($pairs,)*]) };
    (@obj [$($pairs:expr,)*] $key:tt : null $(, $($rest:tt)*)?) => {
        $crate::json!(@obj [$($pairs,)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@obj [$($pairs:expr,)*] $key:tt : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json!(@obj [$($pairs,)* ($key.to_string(), $crate::json!([$($inner)*])),] $($($rest)*)?)
    };
    (@obj [$($pairs:expr,)*] $key:tt : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json!(@obj [$($pairs,)* ($key.to_string(), $crate::json!({$($inner)*})),] $($($rest)*)?)
    };
    (@obj [$($pairs:expr,)*] $key:tt : $val:expr , $($rest:tt)*) => {
        $crate::json!(@obj [$($pairs,)* ($key.to_string(), $crate::Value::from($val)),] $($rest)*)
    };
    (@obj [$($pairs:expr,)*] $key:tt : $val:expr) => {
        $crate::json!(@obj [$($pairs,)* ($key.to_string(), $crate::Value::from($val)),])
    };
    // Entry points.
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json!(@arr [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json!(@obj [] $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = json!({
            "name": "broker",
            "k": [25, 247],
            "sat": [0.51, 0.88],
            "flag": true,
            "missing": null
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn escapes() {
        let s = "line\n\"quoted\"\tand\\slash".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn writer_and_reader() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
