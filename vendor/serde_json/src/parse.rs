//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::Value;

pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number".to_string())?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                            continue; // hex4 advanced pos already
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "non-UTF8 \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(parse("3.25").unwrap(), Value::Float(3.25));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][1]["b"], Value::Str("x".into()));
        assert!(v["c"].is_null());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
        // Surrogate pair escape: U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        // Raw (unescaped) multi-byte UTF-8 passes through.
        assert_eq!(parse(r#""π""#).unwrap(), Value::Str("π".into()));
    }
}
