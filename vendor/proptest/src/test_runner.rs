//! Deterministic case generation: config and RNG.

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// FNV-1a hash of a test name, used as the per-test seed base.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64: small, fast, and statistically solid for test-case
/// generation (not cryptographic).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; the same seed yields the same case forever.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic(5);
        let mut b = TestRng::deterministic(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = TestRng::deterministic(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("alpha"), fnv1a("beta"));
    }
}
