//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range/tuple/collection strategies, and the `prop_assert*` /
//! `prop_assume!` macros. Case generation is deterministic (seeded from
//! the test name and case index), and there is no shrinking — a failing
//! case reports its inputs verbatim instead.
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{Config as ProptestConfig, TestRng};

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
    /// Strategy constructors under the conventional `prop::` alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declare deterministic property tests.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let name_seed = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(name_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}{}",
                            stringify!($name), case + 1, config.cases, message, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "prop_assert failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fail the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "prop_assert_eq failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "prop_assert_eq failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fail the case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "prop_assert_ne failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "prop_assert_ne failed: {} != {} ({})\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            ));
        }
    }};
}

/// Skip the current case when its precondition does not hold.
///
/// The real proptest resamples; this stand-in counts the case as passed,
/// which preserves soundness (never hides a failure) at some coverage
/// cost on sparse preconditions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}
