//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Element-count specification: an exact count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a size spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`. Like the real proptest, the produced set
/// may be smaller than requested when the element domain is nearly
/// exhausted (duplicates are retried a bounded number of times).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(16) + 64 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged() {
        let mut rng = TestRng::deterministic(4);
        let v = vec(0u32..100, 7).generate(&mut rng);
        assert_eq!(v.len(), 7);
        for _ in 0..200 {
            let v = vec(0u32..100, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_distinct() {
        let mut rng = TestRng::deterministic(5);
        let s = hash_set(0u32..1000, 10..20).generate(&mut rng);
        assert!((10..20).contains(&s.len()));
    }

    #[test]
    fn hash_set_saturates_small_domain() {
        let mut rng = TestRng::deterministic(6);
        // Only 3 possible values but 10 requested: must terminate.
        let s = hash_set(0u32..3, 10).generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
