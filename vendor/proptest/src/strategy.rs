//! The [`Strategy`] trait and scalar/tuple strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-4i64..=4).generate(&mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic(2);
        let (a, b) = (0u32..10, 0u32..10).generate(&mut rng);
        assert!(a < 10 && b < 10);
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = TestRng::deterministic(3);
        for _ in 0..500 {
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }
}
