//! Scenario: auditing the alliance's failure resilience before signing.
//!
//! A regulator (or a prospective member) asks: if the alliance's top
//! members defect — or random members fail — how much supervised
//! connectivity survives, and how quickly can the coalition repair
//! itself by recruiting replacements? This extends the paper's
//! stability analysis (Theorems 7/8 say nobody *wants* to leave) with a
//! what-if-they-do stress test.
//!
//! Run with: `cargo run --release --example resilience_audit`

use broker_net::prelude::*;
use brokerset::{failure_trace, greedy_repair, FailureOrder};

fn main() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(2024);
    let g = net.graph();
    let n = g.node_count();
    let k = ((n as f64 * 0.068).round() as usize).max(1);
    let alliance = max_subgraph_greedy(g, k);
    println!(
        "alliance: {} brokers, {:.2}% baseline connectivity\n",
        alliance.len(),
        100.0 * saturated_connectivity(g, alliance.brokers()).fraction
    );

    // Stress test 1: coordinated defection of the founding members.
    let targeted = failure_trace(g, &alliance, FailureOrder::TargetedBySelectionRank, 10);
    // Stress test 2: independent random failures.
    let random = failure_trace(g, &alliance, FailureOrder::Random { seed: 7 }, 10);

    println!("{:<14} {:<14} {:<14}", "removed", "targeted", "random");
    for i in 0..targeted.connectivity.len() {
        println!(
            "{:<14} {:<14} {:<14}",
            format!("{:.0}%", 100.0 * targeted.removed_fraction[i]),
            format!("{:.2}%", 100.0 * targeted.connectivity[i]),
            format!("{:.2}%", 100.0 * random.connectivity[i]),
        );
    }

    // Repair drill: the top 10% of brokers defect; recruit replacements.
    let n_fail = alliance.len() / 10;
    let mut survivors = alliance.brokers().clone();
    let mut failed = NodeSet::new(n);
    for &v in alliance.order().iter().take(n_fail) {
        survivors.remove(v);
        failed.insert(v);
    }
    let broken = saturated_connectivity(g, &survivors).fraction;
    let repaired = greedy_repair(g, &survivors, &failed, n_fail, 11);
    let fixed = saturated_connectivity(g, repaired.brokers()).fraction;
    println!(
        "\nrepair drill: top {n_fail} brokers defect -> {:.2}%; after recruiting\n\
         {n_fail} replacements (defectors excluded) -> {:.2}%",
        100.0 * broken,
        100.0 * fixed
    );
}
