//! Quickstart: generate a small synthetic Internet, pick a broker set,
//! and measure what fraction of end-to-end connections it can supervise.
//!
//! Run with: `cargo run --release --example quickstart`

use broker_net::prelude::*;

fn main() {
    // 1. A ~1.1k-node Internet (use Scale::Quarter or Scale::Full for the
    //    paper-sized runs; everything is seeded and reproducible).
    let cfg = InternetConfig::scaled(Scale::Tiny);
    let net = cfg.generate(2014);
    println!("Generated topology:\n{}\n", net.stats());

    // 2. Select brokers at the paper's three budgets (0.19%, 1.9%, 6.8%
    //    of all ASes/IXPs) with the MaxSubGraph-Greedy heuristic.
    let n = net.graph().node_count();
    for pct in [0.0019, 0.019, 0.068] {
        let k = ((n as f64 * pct).round() as usize).max(1);
        let sel = max_subgraph_greedy(net.graph(), k);
        let sat = saturated_connectivity(net.graph(), sel.brokers());
        println!(
            "{:>5} brokers ({:>5.2}% of nodes) -> {:>6.2}% of E2E connections dominated",
            sel.len(),
            100.0 * sel.len() as f64 / n as f64,
            100.0 * sat.fraction
        );
    }

    // 3. The l-hop view: how quickly does connectivity saturate with the
    //    hop budget? (Paper Fig. 2b.)
    let k = ((n as f64 * 0.068).round() as usize).max(1);
    let sel = max_subgraph_greedy(net.graph(), k);
    let curve = lhop_curve(net.graph(), sel.brokers(), 8, SourceMode::Exact);
    println!(
        "\nl-hop E2E connectivity of the {}-broker alliance:",
        sel.len()
    );
    for (i, f) in curve.fractions.iter().enumerate() {
        println!("  l = {} : {:>6.2}%", i + 1, 100.0 * f);
    }

    // 4. Who are the top brokers? (Paper Table 5.)
    println!("\nTop 10 brokers:");
    for row in brokerset::ranked_brokers(&net, &sel).into_iter().take(10) {
        println!(
            "  #{:<3} {:<4} {:<24} degree {}",
            row.rank, row.category, row.name, row.degree
        );
    }
}
