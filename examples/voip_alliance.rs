//! Scenario: a VoIP operator sizing a broker alliance under a path-length
//! SLA.
//!
//! Interactive voice needs short AS paths (every extra AS hop adds
//! queueing and policy risk), so the operator requires the alliance to
//! deliver an l-hop connectivity curve within ε of the free-path curve —
//! exactly the MCBG-with-path-length-constraints feasibility test of the
//! paper's Problem 4 / Eq. (4). This example sweeps the alliance budget
//! until the constraint holds.
//!
//! Run with: `cargo run --release --example voip_alliance`

use broker_net::prelude::*;
use brokerset::PathLengthConstraint;

fn main() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(555);
    let g = net.graph();
    let n = g.node_count();
    let max_l = 8;

    // Reference: the free-path length distribution (no broker filter).
    let free = lhop_curve(g, &NodeSet::full(n), max_l, SourceMode::Exact);
    let epsilon = 0.06;
    let constraint = PathLengthConstraint::new(free.fractions.clone(), epsilon);
    println!("free-path CDF: {:?}", rounded(&free.fractions));
    println!("SLA: stay within ε = {epsilon} of the free curve at every l\n");

    // Sweep budgets; one long MaxSG run, truncated (prefix property).
    let full_run = max_subgraph_greedy(g, n / 4);
    let mut feasible_at = None;
    for k in [10, 20, 40, 60, 80, 120, 180, full_run.len()] {
        let sel = full_run.truncated(k);
        let curve = lhop_curve(g, sel.brokers(), max_l, SourceMode::Exact);
        let dev = constraint.max_deviation(&curve.fractions);
        let ok = constraint.is_satisfied_by(&curve.fractions);
        println!(
            "k = {:>4}: max deviation {:.4} -> {}",
            sel.len(),
            dev,
            if ok { "SLA met" } else { "SLA violated" }
        );
        if ok && feasible_at.is_none() {
            feasible_at = Some(sel.len());
        }
    }

    match feasible_at {
        Some(k) => println!(
            "\nSmallest tested alliance meeting the VoIP SLA: {k} brokers \
             ({:.2}% of all ASes/IXPs)",
            100.0 * k as f64 / n as f64
        ),
        None => println!("\nNo tested alliance size met the SLA — relax ε or grow k."),
    }
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
