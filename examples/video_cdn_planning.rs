//! Scenario: a video CDN deciding whether a brokered transit product can
//! replace additional replica sites.
//!
//! The CDN serves latency-sensitive streams from a handful of origin
//! ASes. For each (origin, eyeball) pair we compare:
//!
//! - the default valley-free path (BGP-like, no QoS control), and
//! - the broker-stitched dominating path (every hop supervised by the
//!   alliance, so SLAs can be enforced end-to-end),
//!
//! under a synthetic per-edge latency model. The interesting output is
//! the fraction of eyeball ASes whose *entire* path becomes supervisable
//! and the hop/latency overhead that supervision costs.
//!
//! Run with: `cargo run --release --example video_cdn_planning`

use broker_net::prelude::*;
use broker_net::routing::{stitch_path, valley_free_path, LatencyModel, PolicyGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(99);
    let g = net.graph();
    let n = g.node_count();

    // A 6.8%-of-nodes alliance, as in the paper's 3,540-broker result.
    let k = ((n as f64 * 0.068).round() as usize).max(1);
    let alliance = max_subgraph_greedy(g, k);
    let brokers = alliance.brokers();
    println!(
        "alliance: {} brokers, {:.1}% saturated connectivity",
        alliance.len(),
        100.0 * saturated_connectivity(g, brokers).fraction
    );

    let pg = PolicyGraph::new(&net);
    let latency = LatencyModel::sample(&net, 7);

    // Origins: the content ASes; eyeballs: a sample of access ASes.
    let origins: Vec<NodeId> = g
        .nodes()
        .filter(|&v| net.kind(v) == NodeKind::Content)
        .take(5)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    let mut eyeballs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| net.kind(v) == NodeKind::Access)
        .collect();
    eyeballs.shuffle(&mut rng);
    eyeballs.truncate(200);

    let mut supervised = 0usize;
    let mut total = 0usize;
    let mut hop_overhead = Vec::new();
    let mut latency_ratio = Vec::new();
    for &o in &origins {
        for &e in &eyeballs {
            total += 1;
            let Some(brokered) = stitch_path(g, brokers, o, e) else {
                continue;
            };
            supervised += 1;
            if let Some(default) = valley_free_path(&pg, o, e) {
                hop_overhead.push(brokered.hops() as f64 - (default.len() - 1) as f64);
                if let (Some(bl), Some(dl)) = (
                    latency.path_latency(&brokered.path),
                    latency.path_latency(&default),
                ) {
                    latency_ratio.push(bl / dl);
                }
            }
        }
    }

    println!(
        "\n{}/{} origin->eyeball pairs fully supervisable ({:.1}%)",
        supervised,
        total,
        100.0 * supervised as f64 / total as f64
    );
    if !hop_overhead.is_empty() {
        let mean_hops = hop_overhead.iter().sum::<f64>() / hop_overhead.len() as f64;
        println!("mean hop overhead of supervision vs BGP default: {mean_hops:+.2} hops");
    }
    if !latency_ratio.is_empty() {
        let mean_ratio = latency_ratio.iter().sum::<f64>() / latency_ratio.len() as f64;
        println!("mean latency ratio (brokered / default):          {mean_ratio:.3}");
        println!(
            "(ratios near 1.0 mean supervision is nearly free — the paper's\n\
             'minimal path inflation' finding, Table 4)"
        );
    }
}
