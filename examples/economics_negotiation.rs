//! Scenario: the economics of actually running the alliance (Section 7).
//!
//! Three negotiations, end to end:
//!
//! 1. the alliance prices its transit product against customer ASes
//!    (Stackelberg game — the leader posts `p_B`, followers choose
//!    adoption),
//! 2. it hires non-broker "employee" ASes to finish dominating paths
//!    (Nash bargaining -> `p_j* = p_B / ⌈β/2⌉`), and
//! 3. it splits the profit among members by Shapley value, checking the
//!    stability conditions of Theorems 7 and 8.
//!
//! Run with: `cargo run --release --example economics_negotiation`

use broker_net::economics::{
    coalition::FnGame, is_superadditive, is_supermodular, nash_bargain, shapley_exact,
    BargainConfig, CustomerAs, StackelbergGame,
};

fn main() {
    // --- 1. Price the product -------------------------------------------------
    // Followers by tier: low-tier ASes displace more transit spend
    // (higher rho) when high-tier ISPs are inside the alliance.
    let tier2 = CustomerAs {
        qos_revenue: 6.0,
        qos_saturation: 2.0,
        transit_scale: 1.5,
        transit_peak: 0.55,
        adoption_floor: 0.05,
    };
    let tier3 = CustomerAs {
        qos_revenue: 3.0,
        qos_saturation: 2.5,
        transit_scale: 2.5,
        transit_peak: 0.7,
        adoption_floor: 0.05,
    };
    let mut customers = vec![tier2; 30];
    customers.extend(vec![tier3; 70]);
    let game = StackelbergGame {
        customers,
        unit_cost: 0.4,
        hire_overhead: 0.2,
        max_price: 40.0,
    };
    let eq = game.equilibrium().expect("valid game");
    println!("Stackelberg equilibrium:");
    println!("  price p_B*       = {:.3}", eq.price);
    println!(
        "  adoption         = {:.1}% of customer traffic",
        100.0 * eq.total_adoption / game.customers.len() as f64
    );
    println!("  alliance profit  = {:.2}", eq.leader_utility);
    println!(
        "  tier-2 adoption  = {:.3}, tier-3 adoption = {:.3}",
        eq.adoptions[0], eq.adoptions[99]
    );

    // --- 2. Hire employees -----------------------------------------------------
    let bargain = nash_bargain(&BargainConfig {
        broker_price: eq.price,
        routing_cost: 0.3,
        beta: 4,
    })
    .expect("valid bargain");
    println!("\nNash bargaining with employee ASes (beta = 4):");
    println!("  employee price p_j* = {:.3}", bargain.employee_price);
    println!("  employee surplus    = {:.3}", bargain.employee_utility);
    println!("  agreement reached   = {}", bargain.agreement);

    // --- 3. Split the profit ----------------------------------------------------
    // Coalition value: adding brokers has network externalities at first
    // (superadditive, supermodular), then saturates. Weights model the
    // heterogeneous coverage contribution of 8 founding members.
    let w = [5.0, 3.0, 2.0, 1.5, 1.0, 0.8, 0.5, 0.3];
    let profit = eq.leader_utility;
    let value = move |mask: u32| {
        let s: f64 = (0..8).filter(|&j| mask >> j & 1 == 1).map(|j| w[j]).sum();
        let total: f64 = w.iter().sum();
        // Profit scales superlinearly in covered weight (externality).
        profit * (s / total).powf(1.3)
    };
    let game8 = FnGame { n: 8, f: value };
    let shapley = shapley_exact(&game8);
    println!("\nShapley revenue split over 8 founding brokers:");
    for (j, v) in shapley.values.iter().enumerate() {
        println!("  broker {j}: {v:>7.3}");
    }
    println!(
        "  efficient (sum = total profit): {}",
        shapley.is_efficient(&game8, 1e-6)
    );
    println!("  superadditive: {}", is_superadditive(&game8));
    println!(
        "  supermodular (no subcoalition wants to defect): {}",
        is_supermodular(&game8)
    );
}
