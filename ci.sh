#!/usr/bin/env bash
# Local CI gate: formatting, clippy, the repo-specific lint rules and the
# full test suite. Fails fast; run before pushing.
#
# The workspace [lints] table keeps clippy::unwrap_used / expect_used /
# print_stdout at warn level because their blanket versions cannot express
# this repo's actual policy (tests, benches and bins may unwrap and
# print). The precise, scoped versions of those rules (R1/R4) are
# enforced by `cargo run -p xtask -- lint` below, so the clippy step
# keeps them advisory while denying everything else.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

if command -v rustfmt >/dev/null 2>&1; then
    run cargo fmt --check
else
    echo "==> rustfmt unavailable, skipping format check" >&2
fi

if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- \
        -D warnings \
        -A clippy::unwrap_used \
        -A clippy::expect_used \
        -A clippy::print_stdout
else
    echo "==> clippy unavailable, skipping" >&2
fi

# The repo lint in both feature states (the obs feature changes what
# code is compiled, not what is on disk, but running the linter from the
# obs-featured build proves the xtask binary itself stays warning- and
# behavior-clean under the feature), emitting the SARIF artifact and
# checking it is well-formed with the repo's own checker.
run cargo run --offline -q -p xtask -- lint --sarif lint.sarif
run cargo run --offline -q -p xtask --features obs -- lint
run cargo run --offline -q -p xtask -- sarif-check lint.sarif

# Warning gate: a clean `cargo build` in BOTH feature states. The obs
# feature must not introduce warnings (its macros expand differently in
# each state), and a warning-free default build is the baseline anyway.
build_warning_free() {
    echo "==> cargo build --workspace $* (deny warnings)"
    local log
    log="$(mktemp)"
    cargo build --offline --workspace "$@" 2>"$log" || {
        cat "$log" >&2
        rm -f "$log"
        return 1
    }
    if grep -E "^warning" "$log" >/dev/null; then
        echo "==> build warnings under '$*':" >&2
        cat "$log" >&2
        rm -f "$log"
        return 1
    fi
    rm -f "$log"
}
build_warning_free
build_warning_free --features obs

# Determinism gate: the parallel executors must be bit-identical to their
# sequential counterparts at every thread count. Run explicitly (they are
# also part of the workspace suite) so a violation is named, not buried.
run cargo test --offline -q -p netgraph --test determinism
run cargo test --offline -q -p brokerset --test determinism

# msbfs equivalence gate: every lane of the 64-source kernel must match
# the per-source engine on all four view types (property-tested), and on
# the directed valley-free state graph where pull is forbidden.
run cargo test --offline -q -p netgraph --test msbfs_props
run cargo test --offline -q -p routing --test msbfs_valleyfree

# Fault-injection gate: FaultView traversal must equal BFS on an
# explicitly rebuilt surviving subgraph at every epoch of a random
# schedule, schedules must survive JSON round trips semantically, and
# chaos traces must stay bit-identical across thread counts and a
# schedule save/load. Both feature states: the obs counters the chaos
# layer emits must never perturb results.
run cargo test --offline -q -p netgraph --test fault_props
run cargo test --offline -q -p netgraph --test fault_props --features obs
run cargo test --offline -q -p brokerset --test determinism --features obs

# Churn gate: delta application must equal an explicit rebuild (view and
# CSR), and the incrementally maintained broker set must match a full
# recompute on every prefix of arbitrary delta sequences (exactly under
# forced rebuilds, within the pinned coverage-gap bound under forced
# patching). Both feature states: the evolve/incremental obs counters
# must never perturb maintenance decisions.
run cargo test --offline -q -p netgraph --test delta_props
run cargo test --offline -q -p netgraph --test delta_props --features obs
run cargo test --offline -q -p brokerset --test incremental_diff
run cargo test --offline -q -p brokerset --test incremental_diff --features obs

# Query-plane gate: the reachability index must answer exactly like the
# independent BFS oracle on random graphs under random fault schedules
# and topology deltas (property-tested), and the brokerd wire protocol
# must survive malformed frames with clean error replies. Both feature
# states for the index: obs counters must never perturb answers.
run cargo test --offline -q -p brokerset --test index_props
run cargo test --offline -q -p brokerset --test index_props --features obs
run cargo test --offline -q -p broker-net --test proto_server

# Planner gate: every reconfiguration plan must be certificate-clean —
# acyclic, step set equal to the config diff, and every topological cut
# state Validate-clean — with execution traces bit-identical across
# thread counts (differential proptests). Both feature states: obs
# counters must never perturb plan shape or trace checksums. The
# ext_plan golden (DAG shape + cross-thread checksums on the recorded
# epoch stream) rides in the `bins golden` lines below, which already
# run in both states.
run cargo test --offline -q -p routing --test plan_props
run cargo test --offline -q -p routing --test plan_props --features obs

# Observability gates: the obs contract suite in both feature states
# (macro unit-expansion, bucket math, thread-count-invariant snapshots),
# the economics axioms, and the golden result snapshots (table3, fig2a,
# ext_chaos, ext_evolve) — the goldens again under obs, since recorded
# results must be bit-identical across instrumentation states.
run cargo test --offline -q -p netgraph --test obs
run cargo test --offline -q -p netgraph --test obs --features obs
run cargo test --offline -q -p economics --test axioms
run cargo test --offline -q -p bench --test bins golden
run cargo test --offline -q -p bench --test bins golden --features obs

run cargo test --offline -q --workspace

# The workspace suite again with instrumentation compiled in: metrics
# must never change results, only observe them.
run cargo test --offline -q --workspace --features obs

# Perf smoke gate: the quarter-scale (13k-node) engine bench in both
# feature states. engine_bench hard-asserts its own acceptance floors
# (threaded exact l-hop speedup when the host has the cores for it) and
# thread-count / permuted-layout bit-identity; here we additionally pin
# that instrumentation does not change the exact-curve checksum.
perf_smoke() {
    echo "==> engine_bench --scale quarter $*" >&2
    cargo run --offline --release -q -p bench "$@" --bin engine_bench -- \
        --scale quarter --threads 0 \
        | sed -n 's/^  curve_checksum: \([0-9a-f]\{16\}\).*/\1/p'
}
# obs first, default last, so the committed BENCH_engine.json entry
# reflects the uninstrumented build.
checksum_obs=$(perf_smoke --features obs)
checksum_default=$(perf_smoke)
if [ "$checksum_default" != "$checksum_obs" ]; then
    echo "==> quarter-scale curve checksum differs across obs states:" >&2
    echo "    default: $checksum_default, obs: $checksum_obs" >&2
    exit 1
fi
echo "==> quarter-scale perf smoke passed (checksum $checksum_default)"

# Serve smoke gate: a real brokerd on an ephemeral port, driven by the
# serve_bench client in attach mode — 10k queries over TCP whose answer
# checksum must equal the client's own exact (BFS-oracle) evaluation.
# Readiness is sleep-free: brokerd announces its port immediately after
# bind (before the index build), and the attach client's handshake
# blocks on the HELLO reply, which arrives exactly when the daemon
# starts serving. The loop below only scrapes the port number out of
# the log; it never waits out the index build.
echo "==> serve smoke: brokerd + serve_bench --attach" >&2
cargo build --offline --release -q -p bench --bins
brokerd_log="$(mktemp)"
./target/release/brokerd tiny 7 --port 0 >"$brokerd_log" 2>&1 &
brokerd_pid=$!
port=""
for i in $(seq 1 200); do
    port=$(sed -n 's/^brokerd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$brokerd_log")
    [ -n "$port" ] && break
    kill -0 "$brokerd_pid" 2>/dev/null || { cat "$brokerd_log" >&2; exit 1; }
    # The port line lands within milliseconds of process start; back off
    # only if the scheduler is starving us.
    [ "$i" -gt 20 ] && sleep 0.1
done
if [ -z "$port" ]; then
    echo "==> brokerd never reported a listening port:" >&2
    cat "$brokerd_log" >&2
    kill "$brokerd_pid" 2>/dev/null || true
    exit 1
fi
run ./target/release/serve_bench tiny 7 --queries 10000 --attach "$port"
wait "$brokerd_pid"
rm -f "$brokerd_log"
echo "==> serve smoke passed (port $port)"

echo "==> CI gate passed"
